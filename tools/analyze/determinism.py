"""Pass 3 — determinism lint family (SIM006–SIM009).

Rules over the same engine as ``tools.check`` (path scoping, alias
resolution, ``# repro: noqa`` pragmas all apply), but owned by the
whole-program analyzer because their findings gate the sharding
roadmap item rather than day-to-day edits:

* **SIM006** — iteration over a ``set``/``dict`` view that *feeds
  event scheduling or message fan-out*.  Set order is hash-dependent
  across processes; dict order is insertion order, which under
  sharding differs between equivalent shard states.  Either way the
  event/message order stops being a pure function of the scenario.
* **SIM007** — ordering by object identity or hash (``sorted(...,
  key=id)``, ``min(..., key=hash)`` and friends): differs run to run.
* **SIM008** — ``dict.popitem()``: LIFO of insertion order, an easy
  accidental dependency on construction history.
* **SIM009** — environment-variable-dependent control flow inside
  simulation code (``os.environ`` / ``os.getenv``): host state leaking
  into simulated behavior.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from tools.check.engine import CheckContext
from tools.check.rules import Rule

__all__ = ["DETERMINISM_RULES"]

Match = Tuple[ast.AST, str]

#: Simulation code: everything that runs inside the event loop.
_SIM_SCOPE = ("src/repro/sim", "src/repro/protocols", "src/repro/core")

#: Call names that schedule events or fan out messages.
_EFFECT_CALLS = frozenset(
    {"send", "multicast", "_send", "_broadcast", "timeout", "schedule", "process"}
)


def _is_unordered_iterable(node: ast.expr) -> bool:
    """Set-typed expressions and dict views, judged syntactically."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "keys",
            "values",
            "items",
        ):
            return True
    return False


def _has_effect_call(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _EFFECT_CALLS
            ):
                return True
    return False


class NoUnorderedFanout(Rule):
    """SIM006: sort before iterating a set/dict into sends or events."""

    code = "SIM006"
    description = (
        "no set/dict iteration feeding event scheduling or message fan-out "
        "(sort first for a deterministic order)"
    )
    paths = _SIM_SCOPE

    def run(self, tree: ast.Module, ctx: CheckContext) -> Iterator[Match]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not _is_unordered_iterable(node.iter):
                continue
            if _has_effect_call(node.body):
                yield node, (
                    "iterating an unordered set/dict view into message "
                    "sends or event scheduling; wrap the iterable in "
                    "sorted(...) so the fan-out order is deterministic "
                    "across processes and shards"
                )


class NoIdentityOrdering(Rule):
    """SIM007: never order by ``id()`` or ``hash()``."""

    code = "SIM007"
    description = "no ordering by id()/hash() (differs across runs)"
    paths = _SIM_SCOPE

    _ORDERING = frozenset({"sorted", "min", "max"})

    @staticmethod
    def _is_identity_key(node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id in ("id", "hash"):
            return True
        if isinstance(node, ast.Lambda):
            body = node.body
            return (
                isinstance(body, ast.Call)
                and isinstance(body.func, ast.Name)
                and body.func.id in ("id", "hash")
            )
        return False

    def run(self, tree: ast.Module, ctx: CheckContext) -> Iterator[Match]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sort_method = isinstance(func, ast.Attribute) and func.attr == "sort"
            is_ordering_fn = isinstance(func, ast.Name) and func.id in self._ORDERING
            if not (is_sort_method or is_ordering_fn):
                continue
            for kw in node.keywords:
                if kw.arg == "key" and self._is_identity_key(kw.value):
                    yield node, (
                        "ordering by object identity/hash; id() and "
                        "hash() vary across interpreter runs — order by "
                        "a stable domain key (cell id, channel, seq)"
                    )


class NoPopitem(Rule):
    """SIM008: ``dict.popitem()`` depends on construction history."""

    code = "SIM008"
    description = "no dict.popitem() in simulation code (order-of-insertion trap)"
    paths = _SIM_SCOPE

    def run(self, tree: ast.Module, ctx: CheckContext) -> Iterator[Match]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "popitem"
            ):
                yield node, (
                    "dict.popitem() pops in insertion order — an implicit "
                    "dependency on construction history; pop an explicit "
                    "key (e.g. min(d)) instead"
                )


class NoEnvVarControlFlow(Rule):
    """SIM009: host environment variables must not steer the simulation."""

    code = "SIM009"
    description = "no env-var reads in simulation code (host state leak)"
    paths = _SIM_SCOPE

    def run(self, tree: ast.Module, ctx: CheckContext) -> Iterator[Match]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = ctx.dotted_name(node.func)
                if name == "os.getenv":
                    yield node, (
                        "os.getenv() in simulation code; behavior must be "
                        "a pure function of the scenario — pass the value "
                        "in through the config instead"
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "environ":
                name = ctx.dotted_name(node)
                if name == "os.environ":
                    yield node, (
                        "os.environ access in simulation code; behavior "
                        "must be a pure function of the scenario — pass "
                        "the value in through the config instead"
                    )


#: The analyzer-owned rule registry, in code order.
DETERMINISM_RULES: List[Rule] = [
    NoUnorderedFanout(),
    NoIdentityOrdering(),
    NoPopitem(),
    NoEnvVarControlFlow(),
]
