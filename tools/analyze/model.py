"""Whole-program protocol model: messages, send sites, handlers.

The flow pass (``tools/analyze/flow.py``) needs facts that no single
file contains: which dataclasses are protocol messages, which scheme
sends which message kinds (including sends inherited from the MSS base
class), and which ``_on_<Kind>`` handlers exist with which field
accesses.  This module extracts all of it from the ASTs of the files
under analysis — no imports of simulation code, so the analyzer runs
on a broken tree too.

Extraction contract (kept deliberately syntactic):

* **Messages** — any ``@dataclass``-decorated class in the analyzed
  files; fields are the class body's annotated assignments, in order,
  with a flag for defaults.  Methods defined on the dataclass are
  recorded too, so calling them on a handler parameter is not a
  missing-field finding.
* **Send sites** — calls of the protocol/network send API with the
  payload argument at its fixed position: ``self._send(dst, payload)``,
  ``self._broadcast(payload, ...)``, ``*.send(src, dst, payload, ...)``
  and ``*.multicast(src, dsts, payload)``.  The payload is attributed
  to a message kind only when it is a direct constructor call of a
  known message class; variable payloads (e.g. the ARQ retransmitting
  ``record.payload``) are recorded as kind ``None``.
* **Handlers** — methods named ``_on_<Kind>`` (the ``base.py`` dispatch
  contract) plus any method whose message parameter is annotated with a
  known message class (covers helpers like ``_handle_update_request``).
  Field accesses are attribute reads on that parameter.
* **Schemes** — transitive subclasses of ``MSS`` by simple base name;
  per-scheme sends/handlers are the union over the class and its
  ancestors found in the analyzed files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "FieldSpec",
    "MessageClass",
    "SendSite",
    "FieldAccess",
    "Handler",
    "SchemeClass",
    "ProtocolModel",
    "build_model",
]

#: Root class of the protocol hierarchy (``repro.protocols.base.MSS``).
BASE_CLASS = "MSS"

#: Method-call names whose argument at the given index is a payload.
_PAYLOAD_ARG = {
    "_send": 1,  # self._send(dst, payload)
    "_broadcast": 0,  # self._broadcast(payload, dsts=...)
    "send": 2,  # network.send(src, dst, payload, ...)
    "multicast": 2,  # network.multicast(src, dsts, payload)
}


@dataclass(frozen=True)
class FieldSpec:
    """One dataclass field: name and whether it carries a default."""

    name: str
    has_default: bool


@dataclass
class MessageClass:
    """A protocol message dataclass."""

    name: str
    path: str
    line: int
    fields: List[FieldSpec]
    methods: Set[str] = field(default_factory=set)

    @property
    def field_names(self) -> Set[str]:
        return {f.name for f in self.fields}

    @property
    def required(self) -> int:
        return sum(1 for f in self.fields if not f.has_default)


@dataclass
class SendSite:
    """One payload handed to the send API inside a class method."""

    scheme: str  # enclosing class name
    method: str
    kind: Optional[str]  # message class name, None if not a constructor
    path: str
    line: int
    col: int
    call: Optional[ast.Call]  # the constructor call, for arity checks


@dataclass(frozen=True)
class FieldAccess:
    """``msg.<attr>`` inside a handler."""

    attr: str
    line: int
    col: int


@dataclass
class Handler:
    """A message handler (or annotated helper) of one class."""

    scheme: str
    kind: str  # message class name it handles
    method: str
    path: str
    line: int
    accesses: List[FieldAccess] = field(default_factory=list)


@dataclass
class SchemeClass:
    """One class in the protocol hierarchy."""

    name: str
    bases: Tuple[str, ...]
    path: str
    line: int
    sends: List[SendSite] = field(default_factory=list)
    handlers: List[Handler] = field(default_factory=list)


@dataclass
class ProtocolModel:
    """Everything the flow pass needs, for all analyzed files."""

    messages: Dict[str, MessageClass] = field(default_factory=dict)
    classes: Dict[str, SchemeClass] = field(default_factory=dict)

    # -- hierarchy ---------------------------------------------------------
    def ancestors(self, name: str) -> List[str]:
        """Known ancestor class names of ``name`` (nearest first)."""
        out: List[str] = []
        queue = list(self.classes[name].bases) if name in self.classes else []
        while queue:
            base = queue.pop(0)
            if base in out:
                continue
            out.append(base)
            if base in self.classes:
                queue.extend(self.classes[base].bases)
        return out

    def is_scheme(self, name: str) -> bool:
        """True for strict subclasses of the MSS base class."""
        return name in self.classes and BASE_CLASS in self.ancestors(name)

    def scheme_names(self) -> List[str]:
        return sorted(n for n in self.classes if self.is_scheme(n))

    def lineage(self, name: str) -> List[str]:
        """``name`` plus its known ancestors (self first)."""
        return [name] + [a for a in self.ancestors(name) if a in self.classes]

    # -- per-scheme aggregates --------------------------------------------
    def sends_of(self, scheme: str) -> List[SendSite]:
        out: List[SendSite] = []
        for cls in self.lineage(scheme):
            out.extend(self.classes[cls].sends)
        return out

    def handlers_of(self, scheme: str) -> List[Handler]:
        """Handlers visible on ``scheme``, nearest definition winning."""
        seen: Set[Tuple[str, str]] = set()
        out: List[Handler] = []
        for cls in self.lineage(scheme):
            for handler in self.classes[cls].handlers:
                key = (handler.kind, handler.method)
                if key in seen:
                    continue
                seen.add(key)
                out.append(handler)
        return out

    def sent_kinds(self, scheme: str) -> Set[str]:
        return {s.kind for s in self.sends_of(scheme) if s.kind is not None}

    def handled_kinds(self, scheme: str) -> Set[str]:
        return {
            h.kind for h in self.handlers_of(scheme)
            if h.method.startswith("_on_")
        }


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return True
    return False


def _message_fields(node: ast.ClassDef) -> List[FieldSpec]:
    fields: List[FieldSpec] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if isinstance(stmt.annotation, ast.Name) and stmt.annotation.id == "ClassVar":
                continue
            if (
                isinstance(stmt.annotation, ast.Subscript)
                and isinstance(stmt.annotation.value, ast.Name)
                and stmt.annotation.value.id == "ClassVar"
            ):
                continue
            fields.append(FieldSpec(stmt.target.id, stmt.value is not None))
    return fields


def _base_names(node: ast.ClassDef) -> Tuple[str, ...]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def _payload_kind(
    payload: ast.expr, message_names: Set[str]
) -> Tuple[Optional[str], Optional[ast.Call]]:
    """(message kind, constructor call) for a payload expression."""
    if isinstance(payload, ast.Call):
        func = payload.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in message_names:
            return name, payload
    return None, None


def _collect_sends(
    cls: SchemeClass,
    method: ast.AST,
    method_name: str,
    path: str,
    message_names: Set[str],
) -> None:
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        arg_index = _PAYLOAD_ARG.get(func.attr)
        if arg_index is None or len(node.args) <= arg_index:
            # Too few positional args also filters non-fabric ``.send``
            # calls, e.g. the ARQ's 2-argument ``self._link.send``.
            continue
        kind, call = _payload_kind(node.args[arg_index], message_names)
        cls.sends.append(
            SendSite(
                scheme=cls.name,
                method=method_name,
                kind=kind,
                path=path,
                line=node.lineno,
                col=node.col_offset,
                call=call,
            )
        )


def _handler_kind(
    method: ast.FunctionDef, message_names: Set[str]
) -> Optional[Tuple[str, Optional[str]]]:
    """(kind, param name) when ``method`` handles a known message.

    The message parameter is the first non-self argument.  Its
    annotation wins when it names a known message class; otherwise an
    ``_on_<Kind>`` name with known ``<Kind>`` is used.  ``param`` is
    None when the method declares no message parameter at all (a
    mis-declared handler — the flow pass still checks kind coverage).
    """
    args = method.args.args
    param = args[1].arg if len(args) > 1 else None
    if param is not None:
        annotation = args[1].annotation
        ann_name = None
        if isinstance(annotation, ast.Name):
            ann_name = annotation.id
        elif isinstance(annotation, ast.Attribute):
            ann_name = annotation.attr
        elif isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            ann_name = annotation.value.split(".")[-1].strip()
        if ann_name in message_names:
            return ann_name, param
    if method.name.startswith("_on_"):
        kind = method.name[len("_on_"):]
        if kind in message_names:
            return kind, param
    return None


def _collect_handler(
    cls: SchemeClass,
    method: ast.FunctionDef,
    path: str,
    message_names: Set[str],
) -> None:
    resolved = _handler_kind(method, message_names)
    if resolved is None:
        return
    kind, param = resolved
    handler = Handler(
        scheme=cls.name,
        kind=kind,
        method=method.name,
        path=path,
        line=method.lineno,
    )
    if param is not None:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == param
            ):
                handler.accesses.append(
                    FieldAccess(node.attr, node.lineno, node.col_offset)
                )
    cls.handlers.append(handler)


def build_model(files: List[str]) -> ProtocolModel:
    """Parse ``files`` and extract the whole-program protocol model."""
    model = ProtocolModel()
    trees: List[Tuple[str, ast.Module]] = []
    for path in files:
        try:
            tree = ast.parse(Path(path).read_text(), filename=path)
        except SyntaxError:
            continue  # the line lint reports SIM000 for this file
        trees.append((PurePath(path).as_posix(), tree))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node):
                model.messages[node.name] = MessageClass(
                    name=node.name,
                    path=PurePath(path).as_posix(),
                    line=node.lineno,
                    fields=_message_fields(node),
                    methods={
                        stmt.name
                        for stmt in node.body
                        if isinstance(
                            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                        )
                    },
                )
    message_names = set(model.messages)
    for path, tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            cls = SchemeClass(
                name=node.name,
                bases=_base_names(node),
                path=path,
                line=node.lineno,
            )
            # Latest definition wins on name collision (same contract
            # as Python imports; collisions don't occur in src/repro).
            model.classes[node.name] = cls
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _collect_sends(cls, stmt, stmt.name, path, message_names)
                    if isinstance(stmt, ast.FunctionDef):
                        _collect_handler(cls, stmt, path, message_names)
    return model
