#!/usr/bin/env python
"""Run every preset workload under every scheme and write a markdown
comparison report.

    python tools/make_report.py [-o report.md] [--quick] [--seeds N]

``--quick`` shrinks every scenario to a fifth of its horizon (smoke
mode, used by the test suite); ``--seeds N`` averages N replications
with 95% confidence half-widths.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Iterable, Optional, Sequence

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.harness import (  # noqa: E402  (path bootstrap above)
    SCHEMES,
    preset,
    preset_names,
    run_replications,
    summarize,
)

METRICS = [
    ("drop_rate", "drop"),
    ("mean_acquisition_time", "acq time (T)"),
    ("messages_per_acquisition", "msgs/req"),
    ("fairness_index", "fairness"),
]


def render(preset_name: str, rows: Iterable[Sequence[object]]) -> str:
    header = ["scheme"] + [label for _, label in METRICS] + ["violations"]
    out = [f"## {preset_name}", ""]
    out.append("| " + " | ".join(header) + " |")
    out.append("|" + "---|" * len(header))
    for row in rows:
        out.append("| " + " | ".join(str(v) for v in row) + " |")
    out.append("")
    return "\n".join(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("-o", "--output", default="report.md")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seeds", type=int, default=1)
    parser.add_argument(
        "--presets", nargs="*", default=None,
        help="subset of presets (default: all)",
    )
    parser.add_argument(
        "--schemes", nargs="*", default=None,
        help="subset of schemes (default: all)",
    )
    args = parser.parse_args(argv)

    names = args.presets or preset_names()
    schemes = args.schemes or sorted(SCHEMES)

    sections = [
        "# Scheme comparison report",
        "",
        f"*presets: {', '.join(names)}; schemes: {', '.join(schemes)}; "
        f"{args.seeds} replication(s) each*",
        "",
    ]
    t0 = time.time()
    for name in names:
        base = preset(name)
        if args.quick:
            horizon = max(300.0, base.duration / 5)
            base = base.with_(
                duration=horizon, warmup=min(base.warmup, horizon / 3)
            )
        rows = []
        for scheme in schemes:
            reps = run_replications(base.with_(scheme=scheme), args.seeds)
            stats = summarize(reps, [m for m, _ in METRICS])
            cells = [scheme]
            for metric, _label in METRICS:
                ci = stats[metric]
                if args.seeds > 1:
                    cells.append(f"{ci.mean:.4f} ± {ci.half_width:.4f}")
                else:
                    cells.append(f"{ci.mean:.4f}")
            cells.append(sum(r.violations for r in reps))
            rows.append(cells)
        sections.append(render(name, rows))

    sections.append(f"*generated in {time.time() - t0:.1f}s*")
    out_path = pathlib.Path(args.output)
    out_path.write_text("\n".join(sections) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
