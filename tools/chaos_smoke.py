"""Chaos smoke test: short lossy-network sweep with sanitizers raising.

Runs every paper scheme on a hot-spot workload over an unreliable
network (uniform message loss, default 5%) with the full sanitizer
suite in ``raise`` mode, and fails if

* any sanitizer trips (deadlock, causality, quiescence), or
* any mutual-exclusion (co-channel interference) violation is recorded, or
* the hardened stack never actually recovers a lost message
  (``faults_recovered == 0`` would mean the ARQ layer is dead code).

This is deliberately small — a CI smoke, not a study.  The full loss
sweep lives in ``benchmarks/test_fault_sweep.py``.

Usage::

    python -m tools.chaos_smoke [--loss 0.05] [--duration 200] [--seed 7]
"""

from __future__ import annotations

import argparse
import sys

from repro.faults import FaultPlan
from repro.harness import Scenario, render_table, run_scenario
from repro.traffic import HotspotLoad
from repro.verify import set_default_policy

#: Schemes exercised by the smoke (the paper's four comparison points).
SCHEMES = ("fixed", "basic_update", "basic_search", "adaptive")


def build_scenario(scheme: str, loss: float, duration: float, seed: int) -> Scenario:
    holding = 60.0
    return Scenario(
        scheme=scheme,
        faults=FaultPlan.uniform_loss(loss),
        pattern=HotspotLoad(4.0 / holding, [24], 16.0 / holding),
        offered_load=4.0,
        mean_holding=holding,
        duration=duration,
        warmup=min(50.0, duration / 4),
        seed=seed,
    )


def main(argv=None) -> int:
    p = argparse.ArgumentParser(prog="python -m tools.chaos_smoke")
    p.add_argument("--loss", type=float, default=0.05,
                   help="uniform message-loss probability (default 0.05)")
    p.add_argument("--duration", type=float, default=200.0)
    p.add_argument("--seed", type=int, default=7)
    args = p.parse_args(argv)

    # Sanitizers in raise mode: the run aborts on the first deadlock /
    # causality / quiescence violation instead of recording it.
    set_default_policy("raise")

    rows = []
    failures = []
    for scheme in SCHEMES:
        scenario = build_scenario(scheme, args.loss, args.duration, args.seed)
        try:
            report = run_scenario(scenario)
        except Exception as exc:  # sanitizer raise = smoke failure
            failures.append(f"{scheme}: {type(exc).__name__}: {exc}")
            rows.append([scheme, "-", "-", "-", "-", "CRASHED"])
            continue
        injected = sum(report.faults_injected.values())
        recovered = sum(report.faults_recovered.values())
        rows.append(
            [
                scheme,
                round(report.drop_rate, 4),
                round(report.mean_acquisition_time, 3),
                injected,
                recovered,
                report.violations,
            ]
        )
        if report.violations:
            failures.append(
                f"{scheme}: {report.violations} mutual-exclusion violations "
                f"at {args.loss:.0%} loss"
            )
        # fixed sends no protocol messages, so there is nothing to
        # drop and nothing to recover — only the violation gate applies.
        if scheme != "fixed":
            if injected == 0:
                failures.append(f"{scheme}: fault injector injected nothing")
            if recovered == 0:
                failures.append(f"{scheme}: no recovered retransmissions")

    print(
        render_table(
            ["scheme", "drop", "acq time (T)", "injected", "recovered", "violations"],
            rows,
            title=f"chaos smoke: {args.loss:.0%} loss, "
            f"duration={args.duration}, seed={args.seed}",
        )
    )
    if failures:
        print("\nFAIL", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: zero violations under loss, recovery machinery active")
    return 0


if __name__ == "__main__":
    sys.exit(main())
