"""Chaos smoke test: short lossy-network sweep with sanitizers raising.

Runs every paper scheme on a hot-spot workload over an unreliable
network (uniform message loss, default 5%) with the full sanitizer
suite in ``raise`` mode, and fails if

* any sanitizer trips (deadlock, causality, quiescence), or
* any mutual-exclusion (co-channel interference) violation is recorded, or
* the hardened stack never actually recovers a lost message
  (``faults_recovered == 0`` would mean the ARQ layer is dead code).

This is deliberately small — a CI smoke, not a study.  The full loss
sweep lives in ``benchmarks/test_fault_sweep.py``.

Usage::

    python -m tools.chaos_smoke [--loss 0.05] [--duration 200] [--seed 7]
                                [--trace DIR]

``--trace DIR`` additionally runs every scheme with the observability
layer on and writes one run-artifact directory per scheme under DIR
(see docs/OBSERVABILITY.md) — in CI these are uploaded so a chaos
failure comes with its trace attached.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.faults import FaultPlan
from repro.harness import Scenario, render_table, run_scenario
from repro.traffic import HotspotLoad
from repro.verify import set_default_policy

#: Schemes exercised by the smoke (the paper's four comparison points).
SCHEMES = ("fixed", "basic_update", "basic_search", "adaptive")


def build_scenario(
    scheme: str, loss: float, duration: float, seed: int, trace: bool = False
) -> Scenario:
    holding = 60.0
    obs = None
    if trace:
        from repro.obs import ObsConfig

        obs = ObsConfig()
    return Scenario(
        scheme=scheme,
        faults=FaultPlan.uniform_loss(loss),
        pattern=HotspotLoad(4.0 / holding, [24], 16.0 / holding),
        offered_load=4.0,
        mean_holding=holding,
        duration=duration,
        warmup=min(50.0, duration / 4),
        seed=seed,
        obs=obs,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    p = argparse.ArgumentParser(prog="python -m tools.chaos_smoke")
    p.add_argument("--loss", type=float, default=0.05,
                   help="uniform message-loss probability (default 0.05)")
    p.add_argument("--duration", type=float, default=200.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--trace", metavar="DIR", default=None,
                   help="write per-scheme run artifacts (trace, series, "
                        "report) under DIR")
    args = p.parse_args(argv)

    # Sanitizers in raise mode: the run aborts on the first deadlock /
    # causality / quiescence violation instead of recording it.
    set_default_policy("raise")

    rows = []
    failures = []
    trace_entries = []
    for index, scheme in enumerate(SCHEMES):
        scenario = build_scenario(
            scheme, args.loss, args.duration, args.seed, trace=bool(args.trace)
        )
        try:
            report = run_scenario(scenario)
        except Exception as exc:  # sanitizer raise = smoke failure
            failures.append(f"{scheme}: {type(exc).__name__}: {exc}")
            rows.append([scheme, "-", "-", "-", "-", "CRASHED"])
            if args.trace:
                trace_entries.append(
                    {"index": index, "scheme": scheme, "seed": args.seed,
                     "dir": None, "status": "failed"}
                )
            continue
        if args.trace:
            from repro.obs import write_run_artifacts

            files = write_run_artifacts(report, os.path.join(args.trace, scheme))
            trace_entries.append(
                {"index": index, "scheme": scheme, "seed": args.seed,
                 "dir": scheme, "status": "ok", "files": files}
            )
        injected = sum(report.faults_injected.values())
        recovered = sum(report.faults_recovered.values())
        rows.append(
            [
                scheme,
                round(report.drop_rate, 4),
                round(report.mean_acquisition_time, 3),
                injected,
                recovered,
                report.violations,
            ]
        )
        if report.violations:
            failures.append(
                f"{scheme}: {report.violations} mutual-exclusion violations "
                f"at {args.loss:.0%} loss"
            )
        # fixed sends no protocol messages, so there is nothing to
        # drop and nothing to recover — only the violation gate applies.
        if scheme != "fixed":
            if injected == 0:
                failures.append(f"{scheme}: fault injector injected nothing")
            if recovered == 0:
                failures.append(f"{scheme}: no recovered retransmissions")

    print(
        render_table(
            ["scheme", "drop", "acq time (T)", "injected", "recovered", "violations"],
            rows,
            title=f"chaos smoke: {args.loss:.0%} loss, "
            f"duration={args.duration}, seed={args.seed}",
        )
    )
    if args.trace:
        from repro.obs import write_manifest

        write_manifest(args.trace, trace_entries)
        print(f"\nrun artifacts written to {args.trace}/", file=sys.stderr)
    if failures:
        print("\nFAIL", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: zero violations under loss, recovery machinery active")
    return 0


if __name__ == "__main__":
    sys.exit(main())
