"""Repository tooling: doc generation, report building, static checks."""
