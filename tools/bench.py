"""Simulator benchmark driver: kernel throughput, parallel sweep, cache.

Runs seven measurements and records them in ``BENCH_simulator.json``:

1. **Kernel throughput (B0)** — events/second per scheme, using the
   same manual step loop as ``benchmarks/test_simulator_throughput.py``
   so the engine's ``step()`` path itself is on the clock.  CPU time
   (``time.process_time``) is used for the recorded events/s so the
   numbers are stable on noisy or shared machines; wall time is
   recorded alongside for reference.
2. **Serial vs parallel sweep** — the same small sweep run with
   ``workers=1`` and ``workers=N``, with a row-for-row identity check
   proving parallel output matches serial exactly.
3. **Cold vs warm cache** — the sweep run twice against a fresh
   :class:`~repro.harness.ResultCache`; the second run should be
   nearly free.
4. **Sharded kernel** — classic vs space-parallel execution with a
   row-parity check and a critical-path speedup floor.
5. **Warm-start forking** — an N-seed replication sweep run cold
   (N full simulations) vs warm (one ``run_to_checkpoint`` at the
   warmup boundary plus N forks, ``repro.snap``); fork seed 0 must be
   row-identical to the cold base run, and ``--check`` gates the
   speedup against the profile floor (>= 3x on the full reference
   sweep, where measurement is 10% of the horizon).
6. **Fast lane** — the low-load reference scenario run with
   ``fastlane=False`` (exact baseline) and ``fastlane=True`` (fluid
   local-mode cells, ``repro.harness.fastlane``).  ``--check`` gates
   the wall-clock speedup floor (>= 3x on the full profile), the
   fluid-vs-exact divergence tolerances (drop rate, Erlang-B blocking,
   occupancy), and — against the *committed* baseline — that the
   ``fastlane=False`` run's event count has not drifted: lane-off
   behavior is contractually bit-identical to a build without the
   lane.  The divergence table is also written to
   ``benchmarks/fastlane-divergence.json`` for CI artifact upload.
7. **Policy comparison** — every registered mode policy (plus the
   clairvoyant oracle) run on one contended workload through
   ``repro.policies.compare_policies``; records per-policy mean
   regret-vs-oracle.  ``--check`` gates that the oracle's regret is
   exactly 0 and that no policy run produced interference violations.

Usage::

    python -m tools.bench                 # full profile
    python -m tools.bench --smoke         # small grid (CI)
    python -m tools.bench --smoke --check # also fail on >30% regression

``--check`` compares fresh kernel events/s against the committed
baseline in ``--out`` (same profile) and exits non-zero if any scheme
regressed by more than ``--threshold`` (default 30%).  The output file
is merge-updated: only the measured profile's section is replaced, so
``full`` numbers survive a ``--smoke`` run and vice versa.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence

if __package__ in (None, ""):  # `python tools/bench.py` from the repo root
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

try:
    from repro.harness import (
        ResultCache,
        Scenario,
        build_simulation,
        run_replications,
        run_scenario,
        run_sharded_results,
        merge_shard_results,
        sweep,
    )
    from repro.sim.engine import EmptySchedule
except ImportError:  # `python -m tools.bench` without PYTHONPATH=src
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
    from repro.harness import (
        ResultCache,
        Scenario,
        build_simulation,
        run_replications,
        run_scenario,
        run_sharded_results,
        merge_shard_results,
        sweep,
    )
    from repro.sim.engine import EmptySchedule

SCHEMA = 1
DEFAULT_OUT = "BENCH_simulator.json"
SCHEMES = [
    "fixed",
    "basic_search",
    "basic_update",
    "advanced_update",
    "prakash",
    "adaptive",
]

#: Kernel events/s on the machine that produced the committed baseline,
#: measured at the commit *before* the kernel fast path landed (same
#: B0 scenario, same CPU-time methodology).  Kept for the before/after
#: record; the ``--check`` gate compares against the committed *after*
#: numbers, not these.
BEFORE_FULL = {
    "fixed": 124925,
    "basic_search": 138779,
    "basic_update": 163325,
    "advanced_update": 154086,
    "prakash": 119414,
    "adaptive": 96461,
}

PROFILES = {
    "full": {
        "kernel": dict(offered_load=8.0, duration=1200.0, warmup=200.0, seed=101),
        "kernel_repeats": 3,
        "sweep": dict(
            values=["fixed", "basic_update", "adaptive"],
            seeds=[1, 2],
            offered_load=6.0,
            duration=600.0,
            warmup=100.0,
        ),
        # Large grid so per-window compute dominates the per-window
        # barrier cost; 784 cells is ~16x the paper's system.
        "sharded": dict(
            scheme="basic_update",
            rows=28,
            cols=28,
            offered_load=5.0,
            duration=400.0,
            warmup=100.0,
            seed=42,
            shard_counts=[2, 4],
            min_speedup=2.5,
        ),
        # The reference warm-start sweep: a production-shaped horizon
        # where measurement is the last 10%, so the ideal fork speedup
        # is N*D / (W + N*(D-W)) = 30000/5700 ~ 5.3x; the floor leaves
        # headroom for restore overhead.
        "warmstart": dict(
            scheme="adaptive",
            offered_load=5.0,
            duration=3000.0,
            warmup=2700.0,
            seed=31,
            n=10,
            min_speedup=3.0,
        ),
        # The low-load reference profile of the hybrid fast lane: at 3
        # Erlang/cell an adaptive cell's Erlang-B blocking is ~1e-4, so
        # virtually the whole grid rides the fluid lane (fluid fraction
        # ~0.99) and the event heap shrinks ~15x.  Measured ~4x wall
        # against the exact kernel; the floor leaves noise headroom.
        "fastlane": dict(
            scheme="adaptive",
            rows=14,
            cols=14,
            offered_load=3.0,
            duration=2000.0,
            warmup=200.0,
            seed=7,
            min_speedup=3.0,
            max_drop_divergence=0.01,
            max_block_divergence=0.01,
            max_occupancy_divergence=0.5,
        ),
        # Adaptive conservative windows: a sparse scenario (traffic so
        # thin that whole multi-T stretches have no events anywhere)
        # where the null-message optimization should collapse most
        # barriers; the gate demands row parity with fixed windows plus
        # an actual window-count reduction.
        "shard_windows": dict(
            scheme="adaptive",
            rows=7,
            cols=7,
            offered_load=0.25,
            duration=400.0,
            warmup=50.0,
            seed=5,
            shards=2,
            max_window_fraction=0.5,
        ),
        # Contended enough (load 10 on the paper grid) that mode-policy
        # quality shows in the drop rate, so the regret ordering is
        # informative rather than noise around zero.
        "policies": dict(
            offered_load=10.0,
            duration=600.0,
            warmup=100.0,
            seeds=[1, 2],
        ),
    },
    "smoke": {
        "kernel": dict(offered_load=8.0, duration=300.0, warmup=50.0, seed=101),
        "kernel_repeats": 2,
        "sweep": dict(
            values=["fixed", "adaptive"],
            seeds=[1],
            offered_load=6.0,
            duration=300.0,
            warmup=50.0,
        ),
        # Small enough for CI; the barrier overhead is proportionally
        # larger here, so the gate only demands parity plus a loose
        # critical-path floor — the 2.5x claim is the full profile's.
        "sharded": dict(
            scheme="basic_update",
            rows=14,
            cols=14,
            offered_load=5.0,
            duration=200.0,
            warmup=50.0,
            seed=42,
            shard_counts=[2, 4],
            min_speedup=0.8,
        ),
        # Shorter horizon, so the fixed rebuild cost per fork weighs
        # more; the floor only guards the mechanism (ideal here is
        # ~4.7x), the 3x claim belongs to the full profile.
        "warmstart": dict(
            scheme="adaptive",
            offered_load=5.0,
            duration=600.0,
            warmup=540.0,
            seed=31,
            n=8,
            min_speedup=1.3,
        ),
        # Small grid but a long horizon, so the measured region (not
        # the fixed build/report overhead) dominates; the floor still
        # only guards the mechanism — the 3x claim is the full
        # profile's.
        "fastlane": dict(
            scheme="adaptive",
            rows=7,
            cols=7,
            offered_load=3.0,
            duration=2000.0,
            warmup=200.0,
            seed=7,
            min_speedup=2.0,
            max_drop_divergence=0.02,
            max_block_divergence=0.02,
            max_occupancy_divergence=0.75,
        ),
        "shard_windows": dict(
            scheme="adaptive",
            rows=7,
            cols=7,
            offered_load=0.25,
            duration=200.0,
            warmup=50.0,
            seed=5,
            shards=2,
            max_window_fraction=0.5,
        ),
        # One seed and a shorter horizon: the gate (oracle regret
        # exactly 0, zero violations) is structural, not statistical.
        "policies": dict(
            offered_load=10.0,
            duration=400.0,
            warmup=100.0,
            seeds=[1],
        ),
    },
}


def _step_all(scheme: str, spec: Dict[str, Any]) -> int:
    """Build a B0-style simulation and step it manually to the horizon."""
    sim = build_simulation(
        Scenario(
            scheme=scheme,
            offered_load=spec["offered_load"],
            duration=spec["duration"],
            warmup=spec["warmup"],
            seed=spec["seed"],
        )
    )
    sim.source.start()
    env = sim.env
    horizon = spec["duration"]
    events = 0
    while True:
        if env.peek() > horizon:
            break
        try:
            env.step()
        except EmptySchedule:
            break
        events += 1
    return events


def bench_kernel(spec: Dict[str, Any], repeats: int) -> Dict[str, Any]:
    """Best-of-``repeats`` events/s per scheme (CPU time)."""
    out: Dict[str, Any] = {}
    for scheme in SCHEMES:
        best_cpu = None
        best_wall = None
        events = 0
        for _ in range(repeats):
            w0 = time.perf_counter()
            c0 = time.process_time()
            events = _step_all(scheme, spec)
            cpu = time.process_time() - c0
            wall = time.perf_counter() - w0
            if best_cpu is None or cpu < best_cpu:
                best_cpu = cpu
                best_wall = wall
        out[scheme] = {
            "events": events,
            "cpu_s": round(best_cpu, 4),
            "wall_s": round(best_wall, 4),
            "events_per_s": int(events / best_cpu) if best_cpu else 0,
        }
    return out


def _sweep_base(spec: Dict[str, Any]) -> Scenario:
    return Scenario(
        scheme="fixed",
        offered_load=spec["offered_load"],
        duration=spec["duration"],
        warmup=spec["warmup"],
        seed=1,
    )


def bench_sweep(spec: Dict[str, Any], workers: int) -> Dict[str, Any]:
    """Serial vs parallel wall time for the same sweep, plus row parity."""
    base = _sweep_base(spec)
    kwargs = dict(
        parameter="scheme",
        values=spec["values"],
        seeds=spec["seeds"],
        cache=False,
    )
    t0 = time.perf_counter()
    serial = sweep(base, workers=1, **kwargs)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = sweep(base, workers=workers, **kwargs)
    parallel_s = time.perf_counter() - t0
    identical = serial.rows == par.rows
    return {
        "cells": len(serial.rows),
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else 0.0,
        "rows_identical": identical,
    }


def bench_cache(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Cold vs warm wall time for the same sweep against a fresh cache."""
    base = _sweep_base(spec)
    kwargs = dict(parameter="scheme", values=spec["values"], seeds=spec["seeds"])
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        t0 = time.perf_counter()
        cold = sweep(base, cache=cache, **kwargs)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = sweep(base, cache=cache, **kwargs)
        warm_s = time.perf_counter() - t0
        identical = cold.rows == warm.rows
        hits = cache.hits
    return {
        "cells": len(cold.rows),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "warm_fraction": round(warm_s / cold_s, 4) if cold_s else 0.0,
        "warm_hits": hits,
        "rows_identical": identical,
    }


def _parity_row(report) -> List[Any]:
    """The exact-equality fingerprint used for shard parity checks."""
    return [
        report.offered,
        report.granted,
        report.drop_rate,
        report.mean_acquisition_time,
        report.messages_total,
        report.violations,
        report.calls_completed,
    ]


def bench_sharded(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Space-parallel kernel: classic vs sharded on a large grid.

    Records, per shard count, the wall time (hardware-bound: on a
    single-core runner four shard processes cannot beat one) and the
    **critical-path speedup** — classic CPU seconds divided by the
    slowest shard worker's CPU seconds plus the coordinator's — which
    is what the wall speedup converges to given >= shards free cores,
    and is stable across machines, so it is the gated quantity.
    events/s figures are kernel events over the same two denominators.
    """
    scenario = Scenario(
        scheme=spec["scheme"],
        rows=spec["rows"],
        cols=spec["cols"],
        offered_load=spec["offered_load"],
        duration=spec["duration"],
        warmup=spec["warmup"],
        seed=spec["seed"],
    )
    windows = int(-(-spec["duration"] // 1))  # duration / latency_T (=1)

    c0 = time.process_time()
    w0 = time.perf_counter()
    classic = run_scenario(scenario)
    classic_cpu = time.process_time() - c0
    classic_wall = time.perf_counter() - w0
    classic_row = _parity_row(classic)

    out: Dict[str, Any] = {
        "grid": f"{spec['rows']}x{spec['cols']}",
        "scheme": spec["scheme"],
        "duration": spec["duration"],
        "classic": {
            "cpu_s": round(classic_cpu, 3),
            "wall_s": round(classic_wall, 3),
        },
        "rows_identical": True,
        "shards": {},
    }
    for shards in spec["shard_counts"]:
        c0 = time.process_time()
        w0 = time.perf_counter()
        plan, results = run_sharded_results(scenario, shards, mode="process")
        coord_cpu = time.process_time() - c0
        wall = time.perf_counter() - w0
        report = merge_shard_results(scenario, plan, results)
        if _parity_row(report) != classic_row:
            out["rows_identical"] = False
        # Kernel events, net of the one stop event each window costs
        # every shard (a windowing artifact, not simulation work).
        events = sum(r.processed_events for r in results) - shards * windows
        critical = max(r.cpu_s for r in results) + coord_cpu
        out["shards"][str(shards)] = {
            "wall_s": round(wall, 3),
            "coordinator_cpu_s": round(coord_cpu, 3),
            "max_shard_cpu_s": round(max(r.cpu_s for r in results), 3),
            "events": events,
            "cross_shard_messages": sum(r.exported for r in results),
            "events_per_s_wall": int(events / wall) if wall else 0,
            "events_per_s_critical_path": (
                int(events / critical) if critical else 0
            ),
            "speedup_wall": round(classic_wall / wall, 2) if wall else 0.0,
            "speedup_critical_path": (
                round(classic_cpu / critical, 2) if critical else 0.0
            ),
        }
    return out


def bench_warmstart(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Cold N-seed replication sweep vs checkpoint-once-fork-N.

    Cold runs every replication from t=0; warm pays the warmup
    transient once (``run_to_checkpoint`` at the warmup boundary) and
    forks each seed from the snapshot (``repro.snap``).  Fork seed 0
    continues the snapshot's own seed, so its report must be
    row-identical to the cold base run — the speedup is only worth
    recording if the forked sweep is provably the same experiment.
    """
    from repro.snap import fork_replications, run_to_checkpoint

    scenario = Scenario(
        scheme=spec["scheme"],
        offered_load=spec["offered_load"],
        duration=spec["duration"],
        warmup=spec["warmup"],
        seed=spec["seed"],
    )
    n = spec["n"]

    w0 = time.perf_counter()
    cold = run_replications(scenario, n, workers=1, cache=False)
    cold_s = time.perf_counter() - w0

    w0 = time.perf_counter()
    snapshot = run_to_checkpoint(scenario, spec["warmup"])
    checkpoint_s = time.perf_counter() - w0
    warm = fork_replications(snapshot, n, cache=False)
    warm_s = time.perf_counter() - w0

    return {
        "scheme": spec["scheme"],
        "duration": spec["duration"],
        "warmup": spec["warmup"],
        "replications": n,
        "checkpoint_at": round(snapshot.time, 3),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "checkpoint_s": round(checkpoint_s, 3),
        "speedup": round(cold_s / warm_s, 2) if warm_s else 0.0,
        "rows_identical": _parity_row(warm[0]) == _parity_row(cold[0]),
    }


def bench_fastlane(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Exact kernel vs hybrid fluid fast lane on the low-load profile.

    Both runs are the same scenario; only ``fastlane`` differs.  The
    lane-off run's event count is recorded so the committed baseline
    pins it: lane-off behavior must stay bit-identical across commits
    (``check_fastlane`` compares exactly, not within a tolerance).
    The divergence block quantifies how far the fluid model drifted
    from the discrete dynamics it replaced — the same numbers the run
    report's fast-lane section shows.
    """
    base = Scenario(
        scheme=spec["scheme"],
        rows=spec["rows"],
        cols=spec["cols"],
        offered_load=spec["offered_load"],
        duration=spec["duration"],
        warmup=spec["warmup"],
        seed=spec["seed"],
        wrap=False,
    )

    def timed(scenario):
        c0 = time.process_time()
        w0 = time.perf_counter()
        sim = build_simulation(scenario)
        report = sim.run()
        cpu = time.process_time() - c0
        wall = time.perf_counter() - w0
        events = sim.env._eid - len(sim.env._queue)
        return report, cpu, wall, events

    off, off_cpu, off_wall, off_events = timed(base)
    on, on_cpu, on_wall, on_events = timed(base.with_(fastlane=True))
    lane = on.fastlane or {}
    return {
        "grid": f"{spec['rows']}x{spec['cols']}",
        "scheme": spec["scheme"],
        "offered_load": spec["offered_load"],
        "duration": spec["duration"],
        "off": {
            "cpu_s": round(off_cpu, 3),
            "wall_s": round(off_wall, 3),
            "events": off_events,
            "drop_rate": round(off.drop_rate, 6),
            "violations": off.violations,
        },
        "on": {
            "cpu_s": round(on_cpu, 3),
            "wall_s": round(on_wall, 3),
            "events": on_events,
            "drop_rate": round(on.drop_rate, 6),
            "violations": on.violations,
        },
        "speedup_cpu": round(off_cpu / on_cpu, 2) if on_cpu else 0.0,
        "speedup_wall": round(off_wall / on_wall, 2) if on_wall else 0.0,
        "divergence": {
            "drop_rate_abs": round(abs(on.drop_rate - off.drop_rate), 6),
            "block_rate_abs_err": round(
                lane.get("block_rate_abs_err", 0.0), 6
            ),
            "occupancy_abs_err": round(lane.get("occupancy_abs_err", 0.0), 4),
            "fluid_fraction": round(lane.get("fluid_fraction", 0.0), 4),
        },
    }


def bench_shard_windows(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Fixed vs adaptive conservative windows on a sparse scenario.

    Inline mode on purpose: the quantity under test is the number of
    barriers the null-message optimization eliminates (and row parity
    across window modes), not transport wall time.
    """
    scenario = Scenario(
        scheme=spec["scheme"],
        rows=spec["rows"],
        cols=spec["cols"],
        offered_load=spec["offered_load"],
        duration=spec["duration"],
        warmup=spec["warmup"],
        seed=spec["seed"],
        wrap=False,
    )
    shards = spec["shards"]
    rows = {}
    windows = {}
    for window_mode in ("fixed", "adaptive"):
        plan, results = run_sharded_results(
            scenario, shards, mode="inline", window_mode=window_mode
        )
        rows[window_mode] = _parity_row(
            merge_shard_results(scenario, plan, results)
        )
        windows[window_mode] = results[0].windows
    return {
        "grid": f"{spec['rows']}x{spec['cols']}",
        "scheme": spec["scheme"],
        "offered_load": spec["offered_load"],
        "shards": shards,
        "windows_fixed": windows["fixed"],
        "windows_adaptive": windows["adaptive"],
        "window_fraction": (
            round(windows["adaptive"] / windows["fixed"], 4)
            if windows["fixed"]
            else 0.0
        ),
        "rows_identical": rows["fixed"] == rows["adaptive"],
    }


def bench_policies(spec: Dict[str, Any], workers: int) -> Dict[str, Any]:
    """Every registered mode policy (plus the oracle) on one workload.

    Runs ``repro.policies.compare_policies`` — per seed, a linear run
    is traced, the clairvoyant oracle replays the trace, and every
    (policy, seed) cell runs through the parallel engine.  The
    recorded numbers are the per-policy mean drop rate and mean
    regret-vs-oracle; ``check_policies`` gates the structural
    invariants (oracle regret exactly 0, zero violations).
    """
    from repro.policies import compare_policies

    base = Scenario(
        scheme="adaptive",
        offered_load=spec["offered_load"],
        duration=spec["duration"],
        warmup=spec["warmup"],
    )
    w0 = time.perf_counter()
    comparison = compare_policies(
        base, seeds=spec["seeds"], workers=workers, cache=False
    )
    wall = time.perf_counter() - w0
    policies = {}
    for name in sorted(comparison.policies):
        rows = [r for r in comparison.rows if r["policy"] == name]
        policies[name] = {
            "drop_rate": round(
                sum(r["drop_rate"] for r in rows) / len(rows), 6
            ),
            "regret_vs_oracle": round(comparison.regret(name), 6),
            "violations": sum(r["violations"] for r in rows),
        }
    return {
        "offered_load": spec["offered_load"],
        "duration": spec["duration"],
        "seeds": list(spec["seeds"]),
        "wall_s": round(wall, 3),
        "policies": policies,
    }


def check_policies(result: Dict[str, Any]) -> List[str]:
    """Gate: the oracle's regret must be exactly 0 (it is the regret
    yardstick) and no policy run may violate channel interference."""
    problems = []
    oracle = result["policies"].get("oracle")
    if oracle is None:
        problems.append("policies: oracle row missing from comparison")
    elif oracle["regret_vs_oracle"] != 0.0:
        problems.append(
            f"policies: oracle regret {oracle['regret_vs_oracle']} != 0 — "
            "the yardstick itself is broken"
        )
    for name, entry in result["policies"].items():
        if entry["violations"]:
            problems.append(
                f"policies: {entry['violations']} interference "
                f"violation(s) under policy {name!r}"
            )
    return problems


def check_fastlane(
    result: Dict[str, Any],
    spec: Dict[str, Any],
    committed: Dict[str, Any],
) -> List[str]:
    """Gate: wall speedup floor, divergence tolerances, sanitizer
    silence, and lane-off event-count identity vs the committed
    baseline."""
    problems = []
    if result["speedup_wall"] < spec["min_speedup"]:
        problems.append(
            f"fastlane: wall speedup {result['speedup_wall']}x is below "
            f"the {spec['min_speedup']}x floor for this profile"
        )
    divergence = result["divergence"]
    for key, bound in (
        ("drop_rate_abs", spec["max_drop_divergence"]),
        ("block_rate_abs_err", spec["max_block_divergence"]),
        ("occupancy_abs_err", spec["max_occupancy_divergence"]),
    ):
        if divergence[key] > bound:
            problems.append(
                f"fastlane: divergence {key}={divergence[key]} exceeds "
                f"the {bound} tolerance"
            )
    if result["on"]["violations"] or result["off"]["violations"]:
        problems.append("fastlane: interference violations in a bench run")
    baseline_events = (
        committed.get("off", {}).get("events") if committed else None
    )
    if baseline_events is not None and baseline_events != result["off"]["events"]:
        problems.append(
            f"fastlane: lane-off event count {result['off']['events']} "
            f"differs from the committed baseline {baseline_events} — "
            "fastlane=False must stay bit-identical to a build without "
            "the lane"
        )
    return problems


def check_shard_windows(
    result: Dict[str, Any], spec: Dict[str, Any]
) -> List[str]:
    """Gate: adaptive windows must match fixed windows row-for-row and
    actually eliminate barriers on the sparse profile."""
    problems = []
    if not result["rows_identical"]:
        problems.append(
            "shard_windows: adaptive-window rows differ from fixed-window"
        )
    if result["window_fraction"] > spec["max_window_fraction"]:
        problems.append(
            f"shard_windows: adaptive ran {result['windows_adaptive']} of "
            f"{result['windows_fixed']} windows "
            f"({result['window_fraction']:.0%}), above the "
            f"{spec['max_window_fraction']:.0%} ceiling — the "
            "null-message optimization is not engaging"
        )
    return problems


def check_warmstart(
    result: Dict[str, Any], spec: Dict[str, Any]
) -> List[str]:
    """Gate: fork-seed-0 parity must hold; warm speedup must not
    regress below the profile's floor."""
    problems = []
    if not result["rows_identical"]:
        problems.append(
            "warmstart: fork-seed-0 report differs from the cold base run"
        )
    floor = spec["min_speedup"]
    if result["speedup"] < floor:
        problems.append(
            f"warmstart: speedup {result['speedup']}x is below the "
            f"{floor}x floor for this profile"
        )
    return problems


def check_sharded(
    result: Dict[str, Any], spec: Dict[str, Any]
) -> List[str]:
    """Gate: shard parity must hold; critical-path speedup must not
    regress below the profile's floor at the highest shard count."""
    problems = []
    if not result["rows_identical"]:
        problems.append("sharded: report rows differ from the classic kernel")
    top = str(max(spec["shard_counts"]))
    speedup = result["shards"][top]["speedup_critical_path"]
    floor = spec["min_speedup"]
    if speedup < floor:
        problems.append(
            f"sharded: critical-path speedup {speedup}x at {top} shards "
            f"is below the {floor}x floor for this profile"
        )
    return problems


def check_regression(
    fresh: Dict[str, Any], committed: Dict[str, Any], threshold: float
) -> List[str]:
    """Compare fresh kernel events/s against the committed baseline."""
    problems = []
    for scheme, entry in committed.items():
        baseline = entry.get("events_per_s", 0)
        measured = fresh.get(scheme, {}).get("events_per_s", 0)
        if baseline and measured < (1.0 - threshold) * baseline:
            problems.append(
                f"{scheme}: {measured} events/s is more than "
                f"{threshold:.0%} below committed baseline {baseline}"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools.bench", description="Simulator benchmark driver."
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small grid suitable for CI"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if kernel events/s regressed vs the committed baseline",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="PATH")
    parser.add_argument(
        "--divergence-out",
        default=os.path.join("benchmarks", "fastlane-divergence.json"),
        metavar="PATH",
        help="where to write the fast-lane divergence report "
        "(uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="pool size for the parallel sweep leg (0 = min(4, CPUs))",
    )
    parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the sweep and cache legs (kernel throughput only)",
    )
    args = parser.parse_args(argv)

    profile = "smoke" if args.smoke else "full"
    spec = PROFILES[profile]
    workers = args.workers or min(4, os.cpu_count() or 1)

    committed: Dict[str, Any] = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            committed = json.load(fh)

    print(f"profile={profile}  workers={workers}")
    print("kernel throughput (B0 step loop, CPU time, best of "
          f"{spec['kernel_repeats']}):")
    kernel = bench_kernel(spec["kernel"], spec["kernel_repeats"])
    for scheme, entry in kernel.items():
        print(
            f"  {scheme:16s} {entry['events']:>8d} events  "
            f"{entry['cpu_s']:>7.3f}s cpu  {entry['events_per_s']:>8d} ev/s"
        )

    section: Dict[str, Any] = {"kernel": kernel}
    if profile == "full":
        section["kernel_before"] = {
            scheme: {"events_per_s": value} for scheme, value in BEFORE_FULL.items()
        }

    if not args.no_sweep:
        sweep_result = bench_sweep(spec["sweep"], workers)
        print(
            f"sweep: {sweep_result['cells']} cells  "
            f"serial {sweep_result['serial_s']}s  "
            f"parallel(x{workers}) {sweep_result['parallel_s']}s  "
            f"speedup {sweep_result['speedup']}x  "
            f"rows identical: {sweep_result['rows_identical']}"
        )
        cache_result = bench_cache(spec["sweep"])
        print(
            f"cache: cold {cache_result['cold_s']}s  "
            f"warm {cache_result['warm_s']}s  "
            f"warm/cold {cache_result['warm_fraction']}  "
            f"hits {cache_result['warm_hits']}"
        )
        section["sweep"] = sweep_result
        section["cache"] = cache_result
        if not sweep_result["rows_identical"]:
            print("error: parallel sweep rows differ from serial", file=sys.stderr)
            return 1
        if not cache_result["rows_identical"]:
            print("error: warm cache rows differ from cold run", file=sys.stderr)
            return 1

        sharded_result = bench_sharded(spec["sharded"])
        classic = sharded_result["classic"]
        print(
            f"sharded: {sharded_result['grid']} {sharded_result['scheme']}  "
            f"classic {classic['cpu_s']}s cpu / {classic['wall_s']}s wall"
        )
        for count, entry in sharded_result["shards"].items():
            print(
                f"  shards={count}  wall {entry['wall_s']}s  "
                f"critical path {entry['max_shard_cpu_s']}s+"
                f"{entry['coordinator_cpu_s']}s coord  "
                f"speedup {entry['speedup_critical_path']}x critical-path "
                f"({entry['speedup_wall']}x wall)  "
                f"{entry['events_per_s_critical_path']} ev/s  "
                f"{entry['cross_shard_messages']} cross-shard msgs"
            )
        print(f"  rows identical across shard counts: "
              f"{sharded_result['rows_identical']}")
        section["sharded"] = sharded_result
        if not sharded_result["rows_identical"]:
            print(
                "error: sharded rows differ from the classic kernel",
                file=sys.stderr,
            )
            return 1

        warmstart_result = bench_warmstart(spec["warmstart"])
        print(
            f"warmstart: {warmstart_result['scheme']} "
            f"x{warmstart_result['replications']} seeds  "
            f"cold {warmstart_result['cold_s']}s  "
            f"warm {warmstart_result['warm_s']}s "
            f"(checkpoint {warmstart_result['checkpoint_s']}s)  "
            f"speedup {warmstart_result['speedup']}x  "
            f"fork-seed-0 row-identical: "
            f"{warmstart_result['rows_identical']}"
        )
        section["warmstart"] = warmstart_result
        if not warmstart_result["rows_identical"]:
            print(
                "error: warm-forked rows differ from the cold base run",
                file=sys.stderr,
            )
            return 1

        fastlane_result = bench_fastlane(spec["fastlane"])
        divergence = fastlane_result["divergence"]
        print(
            f"fastlane: {fastlane_result['grid']} "
            f"{fastlane_result['scheme']} "
            f"load {fastlane_result['offered_load']}  "
            f"off {fastlane_result['off']['wall_s']}s / "
            f"{fastlane_result['off']['events']} events  "
            f"on {fastlane_result['on']['wall_s']}s / "
            f"{fastlane_result['on']['events']} events  "
            f"speedup {fastlane_result['speedup_wall']}x wall "
            f"({fastlane_result['speedup_cpu']}x cpu)"
        )
        print(
            f"  divergence: drop |d| {divergence['drop_rate_abs']}  "
            f"block |d| {divergence['block_rate_abs_err']}  "
            f"occupancy |d| {divergence['occupancy_abs_err']}  "
            f"fluid fraction {divergence['fluid_fraction']}"
        )
        section["fastlane"] = fastlane_result
        with open(args.divergence_out, "w") as fh:
            json.dump(
                {"profile": profile, "fastlane": fastlane_result},
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
        print(f"wrote {args.divergence_out}")
        if fastlane_result["on"]["violations"] or fastlane_result["off"][
            "violations"
        ]:
            print(
                "error: interference violations in a fastlane bench run",
                file=sys.stderr,
            )
            return 1

        windows_result = bench_shard_windows(spec["shard_windows"])
        print(
            f"shard windows: {windows_result['grid']} "
            f"{windows_result['scheme']} load "
            f"{windows_result['offered_load']} x{windows_result['shards']} "
            f"shards  fixed {windows_result['windows_fixed']} windows  "
            f"adaptive {windows_result['windows_adaptive']} "
            f"({windows_result['window_fraction']:.0%})  "
            f"rows identical: {windows_result['rows_identical']}"
        )
        section["shard_windows"] = windows_result
        if not windows_result["rows_identical"]:
            print(
                "error: adaptive-window rows differ from fixed-window",
                file=sys.stderr,
            )
            return 1

        policies_result = bench_policies(spec["policies"], workers)
        print(
            f"policies: load {policies_result['offered_load']} x"
            f"{len(policies_result['seeds'])} seeds  "
            f"{policies_result['wall_s']}s"
        )
        for name, entry in policies_result["policies"].items():
            print(
                f"  {name:10s} drop {entry['drop_rate']:.4f}  "
                f"regret {entry['regret_vs_oracle']:+.4f}  "
                f"violations {entry['violations']}"
            )
        section["policies"] = policies_result

    failures: List[str] = []
    if args.check:
        baseline = committed.get("profiles", {}).get(profile, {}).get("kernel", {})
        if not baseline:
            print(
                f"--check: no committed {profile!r} baseline in {args.out}; "
                "recording fresh numbers instead",
                file=sys.stderr,
            )
        failures = check_regression(kernel, baseline, args.threshold)
        if not args.no_sweep:
            failures += check_sharded(sharded_result, spec["sharded"])
            failures += check_warmstart(warmstart_result, spec["warmstart"])
            failures += check_fastlane(
                fastlane_result,
                spec["fastlane"],
                committed.get("profiles", {})
                .get(profile, {})
                .get("fastlane", {}),
            )
            failures += check_shard_windows(
                windows_result, spec["shard_windows"]
            )
            failures += check_policies(policies_result)
        for failure in failures:
            print(f"REGRESSION  {failure}", file=sys.stderr)

    document = committed if committed.get("schema") == SCHEMA else {"schema": SCHEMA}
    document.setdefault("profiles", {})[profile] = section
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
