"""E10 — Extension: planned (demand-weighted) FCA vs the adaptive scheme.

The fairest static baseline is not the balanced partition but one
*planned for the demand*: give each reuse color a channel pool sized by
the optimal marginal allocation (Fox's algorithm over Erlang-B, in
``repro.analysis.planning``).  This experiment offers a persistently
skewed demand (cells of one reuse color carry 4× the load of the rest)
to:

* uniform FCA (the paper's baseline),
* planned FCA (weighted pools, demand known a priori),
* the adaptive scheme (balanced pools, **no** a-priori knowledge).

Expected shape: planning fixes most of uniform FCA's skew penalty; the
adaptive scheme matches (or beats) the planned static system *without
the crystal ball* — the case for adaptivity the paper's introduction
makes, sharpened against the strongest static opponent.
"""

from repro.analysis import plan_partition
from repro.cellular import CellularTopology
from repro.traffic import PiecewiseLoad

from _common import Scenario, print_banner, render_table, run_once
from repro.harness import run_scenario

HOLDING = 180.0
HOT_COLOR = 0
HOT_LOAD = 16.0
COOL_LOAD = 4.0


def build_workload():
    """Per-cell rates: color-0 cells hot, everyone else cool."""
    topo = CellularTopology(7, 7, num_channels=70, wrap=True)
    rates = {}
    color_loads = {}
    for cell in topo.grid:
        color = topo.pattern.color(cell)
        load = HOT_LOAD if color == HOT_COLOR else COOL_LOAD
        rates[cell] = load / HOLDING
        color_loads[color] = load
    return PiecewiseLoad(rates), color_loads


def test_planner_vs_adaptive(benchmark):
    pattern, color_loads = build_workload()
    plan = plan_partition(color_loads, 70)
    base = Scenario(
        pattern=pattern,
        mean_holding=HOLDING,
        duration=3000.0,
        warmup=500.0,
        seed=103,
    )

    variants = {
        "uniform FCA": base.with_(scheme="fixed"),
        "planned FCA": base.with_(scheme="fixed", channels_per_color=plan),
        "adaptive (balanced)": base.with_(scheme="adaptive"),
    }

    def experiment():
        return {name: run_scenario(s) for name, s in variants.items()}

    reports = run_once(benchmark, experiment)

    rows = []
    for name, rep in reports.items():
        rows.append(
            [
                name,
                round(rep.drop_rate, 4),
                round(rep.mean_acquisition_time, 3),
                round(rep.messages_per_acquisition, 1),
                round(rep.fairness_index, 4),
                rep.violations,
            ]
        )

    print_banner(
        "E10",
        f"persistent skew: color-{HOT_COLOR} cells at {HOT_LOAD} E, others "
        f"{COOL_LOAD} E; planner gave the hot color "
        f"{plan[HOT_COLOR]} of 70 channels",
    )
    print(
        render_table(
            ["system", "drop rate", "acq time (T)", "msgs/req", "fairness", "violations"],
            rows,
            note="planned FCA knows the demand a priori; adaptive does not",
        )
    )

    uniform = reports["uniform FCA"]
    planned = reports["planned FCA"]
    adaptive = reports["adaptive (balanced)"]
    # Planning recovers most of the skew penalty...
    assert planned.drop_rate < uniform.drop_rate * 0.6
    # ...and blind adaptivity is at least as good as the informed plan.
    assert adaptive.drop_rate <= planned.drop_rate + 0.01
    assert all(r.violations == 0 for r in reports.values())
