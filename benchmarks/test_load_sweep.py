"""E2 — §6 claim: the adaptive scheme tracks the best regime everywhere.

Sweeps uniform load across the three regimes the paper's conclusion
describes and checks the scheme's behavioral signature in each:

* uniformly low load — "optimal ... all cells are in the local mode and
  no messaging is required": ξ1 = 1, zero messages, zero latency;
* moderate/hot load — behaves like the update scheme (ξ2 > 0, bounded
  attempts);
* uniformly high load — "switches to searching and thus provides a
  bounded allocation time" (ξ3 grows, max acquisition time respects
  Table 3's (2αN+1)T bound while basic update's latency keeps growing).

Also prints the Erlang-B analytic reference for the FCA column.
"""

from repro.analysis import erlang_b

from _common import (
    N_REGION,
    Scenario,
    print_banner,
    render_table,
    run_once,
)
from repro.harness import run_scenario

LOADS = [1.0, 3.0, 5.0, 7.0, 9.0, 12.0]
SCHEMES = ["fixed", "basic_update", "basic_search", "adaptive"]


def test_load_sweep_regimes(benchmark):
    base = Scenario(duration=2500.0, warmup=400.0, seed=41)

    def experiment():
        table = {}
        for load in LOADS:
            table[load] = {
                s: run_scenario(base.with_(scheme=s, offered_load=load))
                for s in SCHEMES
            }
        return table

    results = run_once(benchmark, experiment)

    rows = []
    for load in LOADS:
        reps = results[load]
        ada = reps["adaptive"]
        xi = ada.xi
        rows.append(
            [
                load,
                erlang_b(load, 10),
                reps["fixed"].drop_rate,
                reps["basic_update"].drop_rate,
                reps["basic_search"].drop_rate,
                ada.drop_rate,
                f"{xi['local']:.2f}/{xi['update']:.2f}/{xi['search']:.2f}",
                round(ada.messages_per_acquisition, 1),
                round(ada.mean_acquisition_time, 2),
            ]
        )

    print_banner("E2", "uniform load sweep: drop rates and adaptive regime")
    print(
        render_table(
            [
                "load (E)",
                "ErlangB",
                "fixed",
                "b.update",
                "b.search",
                "adaptive",
                "adaptive xi l/u/s",
                "ada msgs",
                "ada acq T",
            ],
            rows,
            note="drop-rate columns; ErlangB = analytic FCA blocking "
            "(10 channels/cell)",
        )
    )

    # Regime 1: low load — silent and instant.
    low = results[1.0]["adaptive"]
    assert low.xi["local"] == 1.0
    assert low.messages_per_acquisition == 0.0
    assert low.mean_acquisition_time == 0.0

    # Regime 2: moderate load — borrowing kicks in, drops well below FCA.
    assert results[5.0]["adaptive"].drop_rate < results[5.0]["fixed"].drop_rate / 2
    mid = results[7.0]
    assert mid["adaptive"].xi["update"] > 0.01
    assert mid["adaptive"].drop_rate < mid["fixed"].drop_rate * 0.7

    # Regime 3: high load — search active, acquisition time bounded.
    high = results[12.0]["adaptive"]
    assert high.xi["search"] > 0.05
    bound = (2 * base.alpha * N_REGION + 1) * base.latency_T
    assert high.max_acquisition_time <= bound

    # FCA simulation tracks Erlang-B across the sweep.
    for load in LOADS:
        assert abs(results[load]["fixed"].drop_rate - erlang_b(load, 10)) < 0.05
