"""Shared plumbing for the benchmark harness.

Each benchmark reproduces one table or figure of the paper (or one
claim of its abstract/§6): it runs the simulations once inside
``benchmark.pedantic`` (so ``pytest benchmarks/ --benchmark-only`` also
measures the simulator's wall-clock cost), prints the regenerated table
in the paper's layout, and asserts the *shape* of the result — who
wins, by roughly what factor — rather than exact numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from repro.harness import Report, Scenario, render_table, run_scenario

#: Scheme display names in the paper's Table order.
PAPER_ORDER = ["basic_search", "basic_update", "advanced_update", "adaptive"]
PAPER_LABELS = {
    "fixed": "Fixed (FCA)",
    "basic_search": "Basic Search",
    "basic_update": "Basic Update",
    "advanced_update": "Advanced Update",
    "adaptive": "Adaptive (Proposed)",
    "prakash": "Allocated-set [8]",
}

#: Topology constants of the default scenario (7x7 torus, k=7, R=2).
N_REGION = 18  # |IN_i|
N_PRIMARY = 10  # |PR_i|


def run_once(benchmark, fn: Callable[[], object]):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_schemes(
    schemes: Iterable[str], base: Scenario
) -> Dict[str, Report]:
    """Run the same scenario under several schemes."""
    return {s: run_scenario(base.with_(scheme=s)) for s in schemes}


def print_banner(exp_id: str, description: str) -> None:
    print()
    print("#" * 72)
    print(f"# {exp_id}: {description}")
    print("#" * 72)


__all__ = [
    "PAPER_ORDER",
    "PAPER_LABELS",
    "N_REGION",
    "N_PRIMARY",
    "run_once",
    "run_schemes",
    "print_banner",
    "render_table",
    "Scenario",
    "run_scenario",
]
