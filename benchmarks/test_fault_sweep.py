"""F1 — drop rate and acquisition time vs. message-loss probability.

The paper assumes a reliable FIFO network; this sweep measures what
each scheme pays when that assumption is broken.  A uniform-loss
:class:`~repro.faults.FaultPlan` is swept over {0, 2, 5, 10}% and the
hardened protocol stack (ack/retry/dedup, PR-3) keeps the algorithms
correct.  Expected shape:

* zero loss is the baseline — hardening is wired but nothing fires;
* mutual exclusion holds at every loss rate for every scheme (the
  safety argument of docs/PROTOCOL.md §10);
* losses are overwhelmingly recovered by retransmission, and the
  adaptive scheme's call drop rate degrades gracefully rather than
  collapsing (its local mode needs no messages at all);
* acquisition time for message-passing schemes rises with loss (each
  recovered loss costs at least one retransmission timeout).
"""

from repro.faults import FaultPlan
from repro.traffic import HotspotLoad

from _common import (
    PAPER_LABELS,
    Scenario,
    print_banner,
    render_table,
    run_scenario,
    run_once,
)

SCHEMES = ["fixed", "basic_update", "basic_search", "adaptive"]
LOSS_RATES = [0.0, 0.02, 0.05, 0.10]
HOLDING = 60.0


def _base(scheme: str, loss: float) -> Scenario:
    return Scenario(
        scheme=scheme,
        faults=FaultPlan.uniform_loss(loss) if loss > 0 else None,
        pattern=HotspotLoad(
            base_rate=4.0 / HOLDING, hot_cells=[24], hot_rate=16.0 / HOLDING
        ),
        offered_load=4.0,
        mean_holding=HOLDING,
        duration=600.0,
        warmup=100.0,
        seed=11,
    )


def test_fault_sweep(benchmark):
    def experiment():
        return {
            (scheme, loss): run_scenario(_base(scheme, loss))
            for scheme in SCHEMES
            for loss in LOSS_RATES
        }

    reports = run_once(benchmark, experiment)

    rows = []
    for scheme in SCHEMES:
        for loss in LOSS_RATES:
            rep = reports[(scheme, loss)]
            injected = sum(rep.faults_injected.values())
            recovered = sum(rep.faults_recovered.values())
            rows.append(
                [
                    PAPER_LABELS[scheme],
                    f"{loss:.0%}",
                    round(rep.drop_rate, 4),
                    round(rep.mean_acquisition_time, 3),
                    injected,
                    recovered,
                    rep.retry_exhausted,
                    rep.violations,
                ]
            )

    print_banner(
        "F1",
        "uniform message loss sweep: hot spot (16 E in cell 24, 4 E "
        "elsewhere), hardened stack",
    )
    print(
        render_table(
            [
                "scheme",
                "loss",
                "call drop",
                "acq time (T)",
                "injected",
                "recovered",
                "exhausted",
                "violations",
            ],
            rows,
        )
    )

    # Safety: mutual exclusion holds at every loss rate for every scheme.
    assert all(r.violations == 0 for r in reports.values())

    for scheme in SCHEMES:
        clean = reports[(scheme, 0.0)]
        # Without a plan nothing is injected and nothing retried.
        assert sum(clean.faults_injected.values()) == 0
        assert clean.retries == 0
        if scheme == "fixed":
            continue  # sends no messages: loss cannot touch it
        for loss in LOSS_RATES[1:]:
            rep = reports[(scheme, loss)]
            injected = sum(rep.faults_injected.values())
            recovered = sum(rep.faults_recovered.values())
            assert injected > 0
            # The ARQ layer recovers the bulk of the losses.
            assert recovered > 0.5 * rep.faults_injected.get("drop", 0)

    # Graceful degradation: at 5% loss the adaptive scheme still beats
    # the static allocator's hot-spot drop rate.
    assert (
        reports[("adaptive", 0.05)].drop_rate
        < reports[("fixed", 0.05)].drop_rate
    )
    # Loss costs time: recovered retransmissions push acquisition
    # latency up for the always-messaging scheme.
    assert (
        reports[("basic_update", 0.10)].mean_acquisition_time
        > reports[("basic_update", 0.0)].mean_acquisition_time
    )
