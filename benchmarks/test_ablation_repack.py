"""E9 — Extension ablation: channel reassignment ("repacking").

The paper cites Cox & Reudink's dynamic channel *reassignment* [1] as
prior art but its own scheme never moves an ongoing call.  The
extension: when a call on an own primary ends while the cell holds
borrowed channels, retire a borrowed channel instead and move the
remaining call onto the freed primary — borrowed channels return to
their owners as soon as possible, shrinking the cell's interference
footprint.

Measured shape (an instructive negative result): repacking keeps the
cell's *primaries* maximally busy, so each newly arriving call finds no
free primary and must run a fresh borrow round — ξ_borrow and the
message bill go *up* (≈ +30%) while the drop rate does not improve.
Early channel return only pays when the owners are themselves starved;
at these loads it is pure overhead.  The benchmark asserts service
never degrades and records the overhead.
"""

from repro.traffic import HotspotLoad

from _common import Scenario, print_banner, render_table, run_once
from repro.harness import run_scenario

HOLDING = 180.0


def test_repack_ablation(benchmark):
    pattern = HotspotLoad(
        base_rate=3.0 / HOLDING,
        hot_cells=[16, 24, 32],
        hot_rate=13.0 / HOLDING,
    )
    base = Scenario(
        scheme="adaptive",
        pattern=pattern,
        mean_holding=HOLDING,
        duration=3000.0,
        warmup=500.0,
    )

    def experiment():
        out = {}
        for label, repack in [("off (paper)", False), ("on (extension)", True)]:
            out[label] = [
                run_scenario(
                    base.with_(seed=seed, extra_params={"repack": repack})
                )
                for seed in (97, 98, 99)
            ]
        return out

    results = run_once(benchmark, experiment)

    def mean(vals):
        return sum(vals) / len(vals)

    rows = []
    stats = {}
    for label, reps in results.items():
        drop = mean([r.drop_rate for r in reps])
        msgs = mean([r.messages_per_acquisition for r in reps])
        acq = mean([r.mean_acquisition_time for r in reps])
        xi_update = mean([r.xi["update"] for r in reps])
        xi_search = mean([r.xi["search"] for r in reps])
        stats[label] = (drop, msgs, acq)
        rows.append(
            [
                label,
                round(drop, 4),
                round(msgs, 1),
                round(acq, 3),
                round(xi_update + xi_search, 3),
            ]
        )

    print_banner(
        "E9",
        "channel-reassignment (repack) extension, 3 hot cells, 3 seeds",
    )
    print(
        render_table(
            ["repack", "drop rate", "msgs/req", "acq time (T)", "xi_borrow"],
            rows,
            note="xi_borrow = fraction of grants needing a borrow; repack "
            "keeps primaries busy, so new calls borrow afresh — overhead "
            "without neighbor starvation",
        )
    )

    off = stats["off (paper)"]
    on = stats["on (extension)"]
    # Repacking must never hurt service.
    assert on[0] <= off[0] + 0.005
    assert all(r.violations == 0 for reps in results.values() for r in reps)
