"""E6 — Ablation of α, the update→search switchover bound (§3.5, §5).

α caps the number of borrowing-update attempts before a cell falls
back to the sequentialized search.  The trade-off the analysis
predicts (Table 1's adaptive row):

* α = 0 — every borrow is a search: guaranteed single round, but the
  region serializes and the per-acquisition cost is the search-mode
  worst case;
* small α — most borrows succeed within a round or two of the cheaper
  optimistic update; search only mops up contention;
* large α — rejected updates retry many times under contention before
  the guaranteed search kicks in: more messages, longer tails.

We sweep α at a contended load and print the cost surface.
"""

from _common import Scenario, print_banner, render_table, run_once
from repro.harness import run_scenario

ALPHAS = [0, 1, 2, 4, 8]


def test_alpha_ablation(benchmark):
    base = Scenario(
        scheme="adaptive",
        offered_load=9.0,
        duration=2500.0,
        warmup=400.0,
    )

    def experiment():
        out = {}
        for alpha in ALPHAS:
            out[alpha] = [
                run_scenario(base.with_(seed=seed, alpha=alpha))
                for seed in (59, 60, 61)
            ]
        return out

    results = run_once(benchmark, experiment)

    def mean(vals):
        return sum(vals) / len(vals)

    rows = []
    stats = {}
    for alpha in ALPHAS:
        reps = results[alpha]
        stats[alpha] = dict(
            drop=mean([r.drop_rate for r in reps]),
            msgs=mean([r.messages_per_acquisition for r in reps]),
            acq=mean([r.mean_acquisition_time for r in reps]),
            p95=mean([r.p95_acquisition_time for r in reps]),
            max_acq=max(r.max_acquisition_time for r in reps),
            xi_search=mean([r.xi["search"] for r in reps]),
        )
        s = stats[alpha]
        rows.append(
            [
                alpha,
                round(s["drop"], 4),
                round(s["msgs"], 1),
                round(s["acq"], 2),
                round(s["p95"], 1),
                round(s["max_acq"], 1),
                round(s["xi_search"], 3),
            ]
        )

    print_banner("E6", "alpha sweep at 9 Erlang/cell (3 seeds each)")
    print(
        render_table(
            [
                "alpha",
                "drop rate",
                "msgs/req",
                "acq mean",
                "acq p95",
                "acq max",
                "xi_search",
            ],
            rows,
            note="Table 3 acquisition bound is (2aN+1)T per request",
        )
    )

    # Searching strictly shrinks as alpha grows.
    searches = [stats[a]["xi_search"] for a in ALPHAS]
    assert searches[0] > searches[-1]
    # The worst-case acquisition bound holds at every alpha.  The
    # paper's (2αN+1)T folds the search wait into the "+1"; measured
    # search waits are (N_search+1)T where deferral chains can span a
    # couple of overlapping regions, so we allow 2(N+1)T for that term.
    for alpha in ALPHAS:
        assert stats[alpha]["max_acq"] <= (2 * alpha * 18 + 1) + 2 * (18 + 1)
    # Service quality is roughly flat across alpha (the knob trades
    # message cost against latency, not drop rate).
    drops = [stats[a]["drop"] for a in ALPHAS]
    assert max(drops) - min(drops) < 0.08
    assert all(r.violations == 0 for reps in results.values() for r in reps)
