"""T1 — Paper Table 1: message complexity & channel acquisition time.

The paper's Table 1 gives closed-form costs per channel acquisition
under a general load, parameterized by the measured quantities m
(average update attempts), ξ1/ξ2/ξ3 (acquisition-path fractions),
N_borrow and N_search.  We run every scheme on the same moderate mixed
load, measure those parameters from the simulation, evaluate the
formulas with them, and print predicted-vs-measured side by side.

Expected shape: the formula predictions and measurements agree within
tens of percent for every scheme (the formulas ignore CHANGE_MODE
chatter and per-call release accounting), and the adaptive scheme's
measured message count sits well below basic update's.
"""

from repro.analysis import MODELS, ModelParams

from _common import (
    N_REGION,
    PAPER_LABELS,
    Scenario,
    print_banner,
    render_table,
    run_once,
    run_schemes,
)

SCHEMES = ["basic_search", "basic_update", "advanced_update", "adaptive"]


def measured_params(scheme: str, report) -> ModelParams:
    xi = report.xi
    m = report.mean_attempts
    if scheme == "basic_search":
        # Search has no retry concept; m is not used by its formulas.
        return ModelParams(N=N_REGION, N_search=1.0, m=0.0,
                           xi1=0, xi2=0, xi3=1, alpha=report.scenario.alpha)
    if scheme == "basic_update":
        return ModelParams(N=N_REGION, m=m, alpha=max(m, 25),
                           xi1=0, xi2=1, xi3=0)
    if scheme == "advanced_update":
        xi1 = xi["local"]
        rest = 1 - xi1
        return ModelParams(N=N_REGION, n_p=3.0, m=max(m, 1.0),
                           alpha=max(m, 25), xi1=xi1, xi2=rest, xi3=0)
    # adaptive
    sum_xi = sum(xi.values()) or 1.0
    return ModelParams(
        N=N_REGION,
        N_search=1.0,
        N_borrow=0.0,  # patched by caller with the measured value
        m=m,
        alpha=report.scenario.alpha,
        xi1=xi["local"] / sum_xi,
        xi2=xi["update"] / sum_xi,
        xi3=xi["search"] / sum_xi,
    )


def test_table1_general_load(benchmark):
    base = Scenario(offered_load=7.5, duration=2500.0, warmup=400.0, seed=13)

    def experiment():
        return run_schemes(SCHEMES, base)

    reports = run_once(benchmark, experiment)

    rows = []
    shapes = {}
    for scheme in SCHEMES:
        rep = reports[scheme]
        params = measured_params(scheme, rep)
        if scheme == "adaptive":
            import dataclasses

            # Measured N_borrow from the protocol's own counters.
            params = dataclasses.replace(
                params, N_borrow=rep.measured_n_borrow
            )
        model = MODELS[scheme]
        pred_msgs = model.message_complexity(params)
        pred_time = model.acquisition_time(params)
        rows.append(
            [
                PAPER_LABELS[scheme],
                round(pred_msgs, 1),
                round(rep.messages_per_acquisition, 1),
                round(pred_time, 2),
                round(rep.mean_acquisition_time, 2),
                round(params.m, 2),
                f"{params.xi1:.2f}/{params.xi2:.2f}/{params.xi3:.2f}",
            ]
        )
        shapes[scheme] = (rep.messages_per_acquisition, rep.mean_acquisition_time)

    print_banner(
        "T1 (Table 1)",
        "message complexity & acquisition time, general load "
        f"({base.offered_load} Erlang/cell)",
    )
    print(
        render_table(
            [
                "scheme",
                "msgs (model)",
                "msgs (sim)",
                "time (model)",
                "time (sim)",
                "m",
                "xi1/xi2/xi3",
            ],
            rows,
            note="model rows evaluate the paper's Table 1 formulas at the "
            "simulation-measured parameters; N=18, T=1",
        )
    )

    # Shape assertions: adaptive uses fewer messages than basic update,
    # and its acquisition time sits below basic search's.
    assert shapes["adaptive"][0] < shapes["basic_update"][0]
    assert shapes["adaptive"][1] < shapes["basic_search"][1]
    # Everybody ran clean.
    assert all(reports[s].violations == 0 for s in SCHEMES)
