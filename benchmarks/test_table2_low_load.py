"""T2 — Paper Table 2: comparison under uniformly low load.

At low load every cell stays in local mode (ξ1 = 1, m → minimal):

    Basic Search     2N msgs, 2T    — still polls the whole region
    Basic Update     4N msgs, 2T    — permission round + broadcasts
    Advanced Update  2N msgs, 0     — local pick, ACQ+REL broadcasts
    Adaptive         0 msgs,  0     — the headline result

We run all schemes at 10% of primary capacity and check each measured
cost lands near its Table 2 value.
"""

import pytest

from repro.analysis import low_load_table

from _common import (
    N_REGION,
    PAPER_LABELS,
    Scenario,
    print_banner,
    render_table,
    run_once,
    run_schemes,
)

SCHEMES = ["basic_search", "basic_update", "advanced_update", "adaptive"]


def test_table2_low_load(benchmark):
    base = Scenario(offered_load=1.0, duration=4000.0, warmup=400.0, seed=29)

    def experiment():
        return run_schemes(SCHEMES, base)

    reports = run_once(benchmark, experiment)
    expected = low_load_table(N=N_REGION, n_p=3, T=base.latency_T)

    rows = []
    for scheme in SCHEMES:
        rep = reports[scheme]
        rows.append(
            [
                PAPER_LABELS[scheme],
                expected[scheme]["messages"],
                round(rep.messages_per_acquisition, 2),
                expected[scheme]["time"],
                round(rep.mean_acquisition_time, 3),
                round(rep.drop_rate, 4),
            ]
        )

    print_banner(
        "T2 (Table 2)", "low-load comparison (1 Erlang/cell, 10% of capacity)"
    )
    print(
        render_table(
            [
                "scheme",
                "msgs (paper)",
                "msgs (sim)",
                "time (paper)",
                "time (sim)",
                "drop rate",
            ],
            rows,
            note="paper columns are Table 2's closed forms at N=18, T=1",
        )
    )

    # Exact paper values at low load:
    assert reports["adaptive"].messages_per_acquisition == 0.0
    assert reports["adaptive"].mean_acquisition_time == 0.0
    assert reports["basic_search"].messages_per_acquisition == pytest.approx(
        2 * N_REGION, rel=0.05
    )
    assert reports["basic_search"].mean_acquisition_time == pytest.approx(
        2.0, rel=0.05
    )
    # Basic update occasionally retries even at low load (m ≈ 1.05):
    # allow that margin over the paper's m = 1 idealization.
    assert reports["basic_update"].messages_per_acquisition == pytest.approx(
        4 * N_REGION, rel=0.15
    )
    assert reports["basic_update"].mean_acquisition_time == pytest.approx(
        2.0, rel=0.15
    )
    assert reports["advanced_update"].messages_per_acquisition == pytest.approx(
        2 * N_REGION, rel=0.05
    )
    assert reports["advanced_update"].mean_acquisition_time == pytest.approx(
        0.0, abs=0.01
    )
    # Nobody drops anything at 10% load.
    assert all(reports[s].drop_rate == 0 for s in SCHEMES)
