"""T1b — The §5 cost models' scaling in N (interference-region size).

Table 1's costs are linear in N, the number of cells in the
interference region.  N is set by the reuse cluster: k=3 gives a
1-ring region (N=6), k=7 a 2-ring region (N=18), k=12 a 3-ring region
(N=36).  We run the same relative load on all three geometries and
check the measured per-acquisition message costs track the predicted
linear growth.

Loads are *blocking-equivalent* across geometries (each set to the
offered load giving 1% Erlang-B blocking on that geometry's primary
pool), so the comparison isolates N.

Expected shape: basic search ≈ 2N at every N; basic update ≈ 2Nm + 2N;
adaptive's low-load cost stays near 0 *independent of N* (its win
grows with denser reuse).
"""

import pytest

from repro.analysis import offered_load_for_blocking

from _common import Scenario, print_banner, render_table, run_once
from repro.harness import run_scenario

#: (cluster k, rows, cols, channels, expected N)
GEOMETRIES = [
    (3, 9, 9, 36, 6),
    (7, 7, 7, 70, 18),
    (12, 12, 12, 72, 36),
]


def test_cost_scaling_in_region_size(benchmark):
    def experiment():
        out = {}
        for k, rows, cols, channels, n_expected in GEOMETRIES:
            primaries = channels // k
            # Equal service quality everywhere: 1% Erlang-B blocking.
            load = offered_load_for_blocking(0.01, primaries)
            base = Scenario(
                rows=rows,
                cols=cols,
                num_channels=channels,
                cluster_size=k,
                offered_load=load,
                mean_holding=120.0,
                duration=1500.0,
                warmup=300.0,
                seed=109,
            )
            for scheme in ("basic_search", "basic_update", "adaptive"):
                out[(k, scheme)] = run_scenario(base.with_(scheme=scheme))
        return out

    results = run_once(benchmark, experiment)

    rows = []
    for k, _r, _c, channels, n in GEOMETRIES:
        search = results[(k, "basic_search")]
        update = results[(k, "basic_update")]
        ada = results[(k, "adaptive")]
        rows.append(
            [
                k,
                n,
                2 * n,
                round(search.messages_per_acquisition, 1),
                round(update.messages_per_acquisition, 1),
                round(ada.messages_per_acquisition, 2),
            ]
        )

    print_banner(
        "T1b",
        "message-cost scaling with interference-region size N "
        "(1%-blocking-equivalent load on each geometry)",
    )
    print(
        render_table(
            [
                "cluster k",
                "N",
                "2N (model)",
                "b.search msgs",
                "b.update msgs",
                "adaptive msgs",
            ],
            rows,
            note="basic search should track 2N exactly; adaptive stays "
            "near 0 at this load regardless of N",
        )
    )

    for k, _r, _c, _ch, n in GEOMETRIES:
        search = results[(k, "basic_search")]
        assert search.messages_per_acquisition == pytest.approx(
            2 * n, rel=0.06
        )
        assert results[(k, "basic_update")].messages_per_acquisition > 2 * n
        # The adaptive advantage grows with N: cost stays bounded.
        assert results[(k, "adaptive")].messages_per_acquisition < n
        assert results[(k, "adaptive")].violations == 0
