"""F11 — Paper Figure 11: advanced update's timestamp inversion.

The scenario: two interfering cells c1 and c2 request the same channel
r.  c1's request is *older* (lower timestamp), but its messages are
slow and c2's overtake them in the network.  Under the advanced update
scheme the primaries p ∈ NP(·, r) see c2 first and grant it; when c1's
older request straggles in it only receives conditional grants, so the
*older* request fails — priority inversion (unfair, though not unsafe).

The paper: "These scenarios are not possible in our scheme since the
request is sent to all neighbors."  Because adaptive requests reach c1
and c2 themselves, the two contenders arbitrate each other directly by
timestamp and the older request always wins.

We reconstruct the race exactly: saturate the grid, free exactly one
channel everywhere, and let c1 (slow links, older) and c2 (fast links,
younger) fight for it under both schemes.
"""

from repro.cellular import CellularTopology
from repro.core import AdaptiveMSS
from repro.metrics import MetricsCollector
from repro.protocols import AdvancedUpdateMSS, InterferenceMonitor
from repro.sim import Environment, LatencyModel, Network

from _common import print_banner, render_table, run_once


class ScriptedLatency(LatencyModel):
    """Per-source one-way delays: c1 slow, c2 fast, everyone else 1."""

    def __init__(self, slow_src: int, fast_src: int) -> None:
        self.slow_src = slow_src
        self.fast_src = fast_src

    def sample(self, src: int, dst: int) -> float:
        if src == self.slow_src:
            return 1.9
        if src == self.fast_src:
            return 0.1
        return 1.0

    @property
    def max_delay(self) -> float:
        return 1.9


def drive(env, gen):
    proc = env.process(gen)
    return env.run(until=proc)


def build(scheme_cls, c1: int, c2: int):
    env = Environment()
    topo = CellularTopology(7, 7, num_channels=70, wrap=True)
    net = Network(env, ScriptedLatency(c1, c2), fifo=False)
    metrics = MetricsCollector()
    monitor = InterferenceMonitor(topo, policy="raise")
    stations = {
        cell: scheme_cls(env, net, topo, cell, metrics=metrics, monitor=monitor)
        for cell in topo.grid
    }
    return env, topo, net, stations, monitor


def stage_single_free_channel(env, topo, stations):
    """Saturate every cell, then free exactly one channel everywhere."""
    for cell, s in stations.items():
        for _ in range(len(topo.PR(cell))):
            assert drive(env, s.request_channel()) is not None
    env.run()  # flush broadcasts
    target = 5  # arbitrary channel; release it wherever it is used
    for s in stations.values():
        if target in s.use:
            s.release_channel(target)
    env.run()
    return target


def race(scheme_cls):
    """Run the overtaking race; returns (winner_ok, results, violations)."""
    c1 = 24
    topo_probe = CellularTopology(7, 7, num_channels=70, wrap=True)
    c2 = sorted(topo_probe.IN(c1))[0]
    env, topo, net, stations, monitor = build(scheme_cls, c1, c2)
    channel = stage_single_free_channel(env, topo, stations)

    results = {}

    def older():
        got = yield from stations[c1].request_channel()
        results["older"] = (got, env.now)

    def younger():
        yield env.timeout(0.05)  # strictly later start → larger timestamp
        got = yield from stations[c2].request_channel()
        results["younger"] = (got, env.now)

    t0 = env.now
    p1 = env.process(older())
    p2 = env.process(younger())
    env.run(until=env.all_of([p1, p2]))
    env.run()
    return channel, results, len(monitor.violations), env.now - t0


def test_fig11_timestamp_inversion(benchmark):
    def experiment():
        return {
            "advanced_update": race(AdvancedUpdateMSS),
            "adaptive": race(AdaptiveMSS),
        }

    outcome = run_once(benchmark, experiment)

    rows = []
    for scheme, (channel, results, violations, elapsed) in outcome.items():
        older_got = results["older"][0]
        younger_got = results["younger"][0]
        inverted = older_got is None and younger_got == channel
        rows.append(
            [
                scheme,
                channel,
                "-" if older_got is None else older_got,
                "-" if younger_got is None else younger_got,
                inverted,
                violations,
            ]
        )

    print_banner(
        "F11 (Figure 11)",
        "message overtaking: older slow requester vs younger fast requester",
    )
    print(
        render_table(
            [
                "scheme",
                "contested ch",
                "older got",
                "younger got",
                "priority inverted",
                "violations",
            ],
            rows,
            note="one free channel in the region; c1's messages take 1.9T, "
            "c2's 0.1T, c2 starts 0.05 later (higher timestamp)",
        )
    )

    adv_ch, adv_res, adv_viol, _ = outcome["advanced_update"]
    ada_ch, ada_res, ada_viol, _ = outcome["adaptive"]

    # Advanced update: the younger request wins (the paper's complaint)...
    assert adv_res["younger"][0] == adv_ch
    assert adv_res["older"][0] is None
    # ...but safety is never violated (it's unfair, not unsafe).
    assert adv_viol == 0

    # Adaptive: the older request always wins.
    assert ada_res["older"][0] == ada_ch
    assert ada_res["younger"][0] is None
    assert ada_viol == 0
