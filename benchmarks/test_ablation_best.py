"""E4 — Ablation of the Best() heuristic (paper Fig. 10, §3.5).

"In order to maximize the success probability of channel borrowing,
cell i always tries to borrow a channel from a cell in its interference
neighborhood which has the least number of neighbors in borrowing mode"
— the claim being that targeting quiet owners reduces borrow-round
collisions and hence the retry count.

We compare three target-selection policies on a workload with several
adjacent hot cells (maximum borrow contention):

* ``best``   — the paper's heuristic;
* ``first``  — lowest eligible cell id (no load awareness);
* ``random`` — uniform among eligible owners.

Expected shape: ``best`` needs no more update attempts per granted
borrow and no more messages per request than the naive policies.
"""

from repro.traffic import HotspotLoad

from _common import Scenario, print_banner, render_table, run_once
from repro.harness import run_scenario

HOLDING = 180.0
POLICIES = ["best", "first", "random"]


def test_best_heuristic_ablation(benchmark):
    pattern = HotspotLoad(
        base_rate=3.0 / HOLDING,
        hot_cells=[16, 17, 24, 25],
        hot_rate=14.0 / HOLDING,
    )
    base = Scenario(
        scheme="adaptive",
        pattern=pattern,
        mean_holding=HOLDING,
        duration=3000.0,
        warmup=500.0,
        alpha=4,  # room for retries so collision differences show up
    )

    def experiment():
        out = {}
        for policy in POLICIES:
            reps = [
                run_scenario(
                    base.with_(
                        seed=seed, extra_params={"best_policy": policy}
                    )
                )
                for seed in (47, 48, 49)
            ]
            out[policy] = reps
        return out

    results = run_once(benchmark, experiment)

    def mean(vals):
        return sum(vals) / len(vals)

    rows = []
    stats = {}
    for policy in POLICIES:
        reps = results[policy]
        update_attempts = mean(
            [
                sum(
                    r.attempts
                    for r in rep.metrics.records
                    if r.granted and r.mode == "update"
                )
                / max(
                    1,
                    sum(
                        1
                        for r in rep.metrics.records
                        if r.granted and r.mode == "update"
                    ),
                )
                for rep in reps
            ]
        )
        msgs = mean([r.messages_per_acquisition for r in reps])
        drop = mean([r.drop_rate for r in reps])
        searches = mean([r.xi["search"] for r in reps])
        stats[policy] = (update_attempts, msgs, drop, searches)
        rows.append(
            [
                policy,
                round(update_attempts, 3),
                round(msgs, 1),
                round(drop, 4),
                round(searches, 3),
            ]
        )

    print_banner(
        "E4",
        "Best() target-selection ablation, 4 adjacent hot cells, alpha=4 "
        "(3 seeds each)",
    )
    print(
        render_table(
            [
                "policy",
                "attempts/borrow",
                "msgs/req",
                "drop rate",
                "xi_search",
            ],
            rows,
            note="attempts/borrow = mean update rounds per granted borrow "
            "(collisions force retries); xi_search = searches forced by "
            "exhausting alpha",
        )
    )

    best = stats["best"]
    for other in ("first", "random"):
        # The heuristic should not need more rounds per borrow (small
        # tolerance: three seeds of simulation noise).
        assert best[0] <= stats[other][0] * 1.05
    assert all(r.violations == 0 for reps in results.values() for r in reps)
