"""E1 — Abstract/§1 claim: hot spots drop calls under static allocation
"even when there are enough idle channels in the interference region".

A persistent spatial hot spot (a few cells far above primary capacity,
neighbors far below it) is offered to every scheme.  Expected shape:

* FCA's drop rate is dominated by the hot cells (they exceed their 10
  primaries; the idle neighbors can't help);
* every dynamic/hybrid scheme cuts the drop rate by a large factor by
  borrowing idle neighbor channels;
* the adaptive scheme achieves that with far fewer messages than basic
  update, because only the hot cells leave local mode.
"""

from repro.traffic import HotspotLoad

from _common import (
    PAPER_LABELS,
    Scenario,
    print_banner,
    render_table,
    run_once,
    run_schemes,
)

SCHEMES = ["fixed", "basic_search", "basic_update", "advanced_update", "prakash", "adaptive"]
HOLDING = 180.0
HOT_CELLS = [24]  # one downtown cell; its 18 neighbors stay cool


def test_hotspot_drop_rates(benchmark):
    pattern = HotspotLoad(
        base_rate=2.0 / HOLDING, hot_cells=HOT_CELLS, hot_rate=25.0 / HOLDING
    )
    base = Scenario(
        pattern=pattern,
        mean_holding=HOLDING,
        duration=3000.0,
        warmup=500.0,
        seed=37,
    )

    def experiment():
        return run_schemes(SCHEMES, base)

    reports = run_once(benchmark, experiment)

    rows = []
    for scheme in SCHEMES:
        rep = reports[scheme]
        hot_drop = max(
            rep.per_cell_drop_rates.get(c, 0.0) for c in HOT_CELLS
        )
        rows.append(
            [
                PAPER_LABELS[scheme],
                round(rep.drop_rate, 4),
                round(hot_drop, 4),
                round(rep.mean_acquisition_time, 2),
                round(rep.messages_per_acquisition, 1),
                rep.violations,
            ]
        )

    print_banner(
        "E1",
        "spatial hot spot: 25 Erlang in cell 24, 2 Erlang elsewhere "
        "(10 primaries/cell)",
    )
    print(
        render_table(
            [
                "scheme",
                "drop (all)",
                "drop (hot cell)",
                "acq time (T)",
                "msgs/req",
                "violations",
            ],
            rows,
        )
    )

    fixed = reports["fixed"]
    adaptive = reports["adaptive"]
    # The hot cell under FCA drops a large share of its calls...
    assert fixed.per_cell_drop_rates[24] > 0.3
    # ...while dynamic schemes keep the overall rate several times lower.
    for scheme in ["basic_search", "basic_update", "advanced_update", "adaptive"]:
        assert reports[scheme].drop_rate < fixed.drop_rate / 2
    # Adaptive spends fewer messages than basic update for that result.
    assert (
        adaptive.messages_per_acquisition
        < reports["basic_update"].messages_per_acquisition
    )
    assert all(reports[s].violations == 0 for s in SCHEMES)
