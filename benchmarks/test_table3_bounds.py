"""T3 — Paper Table 3: min/max bounds per scheme across the load range.

Table 3 bounds each scheme's per-acquisition message complexity and
acquisition time over all loads.  We sweep offered load from 5% to
180% of capacity and report the *observed* per-request minima/maxima
against the paper's bounds:

    scheme            msgs min/max        time min/max
    Basic Search      2N / 2N             2T / (N+1)T
    Basic Update      2N / inf            2T / inf
    Advanced Update   N  / inf            0  / inf
    Adaptive          0  / 2αN+4N         0  / (2αN+1)T

Finite bounds must hold for every observation; infinite bounds are
reported as the growth observed at the top of the sweep.
"""


from repro.analysis import bounds_table

from _common import (
    N_REGION,
    PAPER_LABELS,
    Scenario,
    print_banner,
    render_table,
    run_once,
)
from repro.harness import run_scenario

SCHEMES = ["basic_search", "basic_update", "advanced_update", "adaptive"]
LOADS = [0.5, 2.0, 5.0, 8.0, 11.0, 14.0, 18.0]


def per_request_messages(report) -> float:
    """Messages per request that actually ran the protocol.

    At overload a slice of calls abandons in the setup queue before the
    protocol starts (blocked-calls-cleared); they cost zero messages
    and would dilute the per-acquisition averages the paper's bounds
    describe.
    """
    protocol_requests = sum(
        1 for r in report.metrics.records if r.mode != "queue_timeout"
    )
    if not protocol_requests:
        return 0.0
    return report.messages_total / protocol_requests


def test_table3_bounds(benchmark):
    base = Scenario(duration=1500.0, warmup=300.0, seed=31)

    def experiment():
        out = {}
        for scheme in SCHEMES:
            observed = []
            for load in LOADS:
                rep = run_scenario(
                    base.with_(scheme=scheme, offered_load=load)
                )
                observed.append(rep)
            out[scheme] = observed
        return out

    results = run_once(benchmark, experiment)
    paper = bounds_table(N=N_REGION, alpha=base.alpha, T=base.latency_T)

    rows = []
    for scheme in SCHEMES:
        reps = results[scheme]
        msgs = [per_request_messages(r) for r in reps]
        acq_means = [r.mean_acquisition_time for r in reps]
        acq_max = max(r.max_acquisition_time for r in reps)
        p = paper[scheme]
        rows.append(
            [
                PAPER_LABELS[scheme],
                f"{p['msg_min']:g}..{p['msg_max']:g}",
                f"{min(msgs):.1f}..{max(msgs):.1f}",
                f"{p['time_min']:g}..{p['time_max']:g}",
                f"{min(acq_means):.2f}..{acq_max:.1f}",
            ]
        )

    print_banner(
        "T3 (Table 3)",
        f"observed bounds over load sweep {LOADS} Erlang/cell",
    )
    print(
        render_table(
            ["scheme", "msgs bound (paper)", "msgs observed", "time bound (paper)", "time observed"],
            rows,
            note="msgs observed are per-request averages (min..max across "
            "loads); time observed is min of means .. max single request",
        )
    )

    # -- finite paper bounds must hold observation-wise -------------------
    adaptive = results["adaptive"]
    msg_cap = paper["adaptive"]["msg_max"]
    time_cap = paper["adaptive"]["time_max"]
    for rep in adaptive:
        assert rep.max_acquisition_time <= time_cap
    # Per-request *average* messages stay under the worst-case bound.
    assert max(per_request_messages(r) for r in adaptive) <= msg_cap

    # Adaptive and advanced update reach zero-cost floor at light load.
    assert per_request_messages(adaptive[0]) == 0.0
    assert adaptive[0].mean_acquisition_time == 0.0

    # Basic search's cost is load-independent (2N every time).
    searches = [per_request_messages(r) for r in results["basic_search"]]
    assert max(searches) - min(searches) < 2.0

    # Basic update's time grows with load (unbounded in the paper);
    # check monotone-ish growth across the sweep ends.
    bu = results["basic_update"]
    assert bu[-1].mean_acquisition_time > bu[0].mean_acquisition_time
