"""E3 — §5/§6 claim: update can starve; adaptive bounds allocation time.

"In the update scheme there is always a finite probability of collision
on every channel request and thus a cell can see unlimited delays.  The
adaptive scheme switches to borrowing search mode whenever the number
of attempts ... exceeds a bound and hence provides fair service."

Under sustained high uniform load we compare the *tails*: attempts
histogram and p99/max acquisition time.  Expected shape:

* basic update's attempt count and latency tail stretch far beyond its
  mean (some requests retry many times);
* the adaptive scheme's attempts are capped near α + 1 and its max
  acquisition time respects the (2αN+1)T bound;
* adaptive's fairness index (per-cell grant rates) is at least as good.
"""

import numpy as np

from _common import (
    N_REGION,
    PAPER_LABELS,
    Scenario,
    print_banner,
    render_table,
    run_once,
    run_schemes,
)

SCHEMES = ["basic_update", "adaptive"]


def test_starvation_tail_bound(benchmark):
    base = Scenario(
        offered_load=11.0,
        duration=2500.0,
        warmup=400.0,
        seed=43,
        max_attempts=200,  # let basic update really retry
        # Latency jitter desynchronizes the mirrored state, which is
        # what makes basic update's collision/retry tail visible.
        latency_model="uniform",
        latency_spread=2.0,
    )

    def experiment():
        return run_schemes(SCHEMES, base)

    reports = run_once(benchmark, experiment)

    rows = []
    for scheme in SCHEMES:
        rep = reports[scheme]
        times = rep.metrics.acquisition_times()
        p99 = float(np.percentile(times, 99)) if times.size else 0.0
        rows.append(
            [
                PAPER_LABELS[scheme],
                round(rep.mean_attempts, 2),
                rep.max_attempts,
                round(rep.mean_acquisition_time, 2),
                round(p99, 1),
                round(rep.max_acquisition_time, 1),
                round(rep.fairness_index, 4),
            ]
        )

    print_banner(
        "E3",
        "sustained 11 Erlang/cell: retry and latency tails "
        "(update vs adaptive)",
    )
    print(
        render_table(
            [
                "scheme",
                "attempts mean",
                "attempts max",
                "acq mean",
                "acq p99",
                "acq max",
                "fairness",
            ],
            rows,
            note="one-way latency uniform in [1, 3]; adaptive bound "
            f"acq <= (2aN+1)T = {(2 * base.alpha * N_REGION + 1) * 3} "
            "at T = max one-way delay = 3",
        )
    )

    bu, ada = reports["basic_update"], reports["adaptive"]
    # Basic update's retry tail dwarfs adaptive's.
    assert bu.max_attempts > ada.max_attempts
    assert bu.max_attempts >= 8  # real starvation pressure occurred
    # Adaptive attempts are bounded by the α-then-search design: at most
    # α update rounds (+ guarded rounds) and one search.
    assert ada.max_attempts <= 2 * base.alpha + 2
    # Table 3's worst-case acquisition bound holds for every request
    # (T = the latency model's max one-way delay = 1 + spread).
    T = 1.0 + base.latency_spread
    assert ada.max_acquisition_time <= (2 * base.alpha * N_REGION + 1) * T
    # Fair service: no cell starves disproportionately.
    assert ada.fairness_index > 0.97
    assert all(r.violations == 0 for r in reports.values())
