"""E11 — Extension: guard channels (handoff priority) under mobility.

Classic cellular admission control (Hong & Rappaport 1986): reserve the
last g free primaries for handoffs, because users experience a dropped
ongoing call as far worse than a blocked new one.  We sweep g for the
fixed and adaptive schemes on a mobile workload.

Expected shape: forced terminations fall monotonically with g while
new-call blocking rises — the textbook trade-off — and the guard is
dramatically more effective under the adaptive scheme: a guarded
handoff that finds no free primary can still *borrow*, so g=1 already
pushes adaptive forced terminations near zero while fixed needs g≈4.
"""

from _common import Scenario, print_banner, render_table, run_once
from repro.harness import run_scenario

GUARDS = [0, 1, 2, 4]


def test_guard_channel_sweep(benchmark):
    base = Scenario(
        offered_load=8.5,
        mean_dwell=150.0,
        duration=2500.0,
        warmup=400.0,
        seed=107,
    )

    def experiment():
        out = {}
        for scheme in ("fixed", "adaptive"):
            for g in GUARDS:
                rep = run_scenario(
                    base.with_(
                        scheme=scheme, extra_params={"guard_channels": g}
                    )
                )
                out[(scheme, g)] = rep
        return out

    results = run_once(benchmark, experiment)

    rows = []
    for (scheme, g), rep in results.items():
        rows.append(
            [
                scheme,
                g,
                round(rep.new_call_block_rate, 4),
                round(rep.handoff_failure_rate, 4),
                round(rep.drop_rate, 4),
                rep.violations,
            ]
        )

    print_banner(
        "E11",
        "guard-channel sweep at 8.5 Erlang/cell with mobility (dwell 150)",
    )
    print(
        render_table(
            [
                "scheme",
                "guard g",
                "new-call block",
                "handoff failure",
                "drop (all)",
                "violations",
            ],
            rows,
            note="reserving g primaries for handoffs trades new-call "
            "blocking for fewer forced terminations",
        )
    )

    for scheme in ("fixed", "adaptive"):
        ho = [results[(scheme, g)].handoff_failure_rate for g in GUARDS]
        nb = [results[(scheme, g)].new_call_block_rate for g in GUARDS]
        # Strong guarding protects handoffs and costs new calls.
        assert ho[-1] < ho[0]
        assert nb[-1] > nb[0]
    # The borrow path makes the adaptive guard far more effective:
    # one guarded primary already nearly eliminates forced terminations.
    assert results[("adaptive", 1)].handoff_failure_rate < 0.01
    # At every guard level the adaptive scheme's forced terminations are
    # below fixed's (its borrow path is an implicit guard).
    for g in GUARDS:
        assert (
            results[("adaptive", g)].handoff_failure_rate
            <= results[("fixed", g)].handoff_failure_rate
        )
    assert all(r.violations == 0 for r in results.values())
