"""E7 — §6 comparison with the allocated-set scheme of Prakash et al. [8].

The paper's discussion: [8] adapts to load by letting a cell *keep*
channels (serving transient peaks from its allocated set for free), but
when the allocated set runs dry a channel must be migrated with the
TRANSFER/AGREE/KEEP handshake — potentially "more than one round" —
while the adaptive scheme always moves a channel with a single round of
messaging.

A transient hot spot exposes both behaviours: during the burst the two
schemes borrow/transfer; after it ends, the allocated-set scheme keeps
serving from its (migrated) sets while the adaptive scheme returns to
its static primaries.

Expected shape: comparable drop rates at this load; the allocated-set
scheme pays fewer total messages (its steady state is silent) but its
transfer path needs multiple rounds per acquisition (attempts > 1)
whereas adaptive's search path is single-round by construction.
"""

from repro.traffic import TemporalHotspot

from _common import (
    PAPER_LABELS,
    Scenario,
    print_banner,
    render_table,
    run_once,
    run_schemes,
)

HOLDING = 180.0
SCHEMES = ["prakash", "adaptive"]


def test_allocated_set_comparison(benchmark):
    pattern = TemporalHotspot(
        base_rate=3.0 / HOLDING,
        hot_cells=[16, 17, 24, 25, 31],
        hot_rate=13.0 / HOLDING,
        start=800.0,
        end=2400.0,
    )
    base = Scenario(
        pattern=pattern,
        mean_holding=HOLDING,
        duration=3600.0,
        warmup=400.0,
        seed=67,
    )

    def experiment():
        return run_schemes(SCHEMES, base)

    reports = run_once(benchmark, experiment)

    rows = []
    for scheme in SCHEMES:
        rep = reports[scheme]
        remote = [
            r for r in rep.metrics.records if r.granted and r.mode == "search"
        ]
        remote_attempts = (
            sum(r.attempts for r in remote) / len(remote) if remote else 0.0
        )
        rows.append(
            [
                PAPER_LABELS.get(scheme, scheme),
                round(rep.drop_rate, 4),
                round(rep.mean_acquisition_time, 3),
                round(rep.messages_per_acquisition, 1),
                round(rep.xi["local"], 3),
                round(remote_attempts, 2),
                rep.violations,
            ]
        )

    print_banner(
        "E7",
        "transient hot spot: allocated-set scheme [8] vs adaptive",
    )
    print(
        render_table(
            [
                "scheme",
                "drop rate",
                "acq time (T)",
                "msgs/req",
                "xi_local",
                "rounds/remote acq",
                "violations",
            ],
            rows,
            note="rounds/remote acq = poll+transfer rounds ([8]) or "
            "update/search attempts (adaptive) per non-local grant",
        )
    )

    pk, ada = reports["prakash"], reports["adaptive"]
    # Both schemes keep the hot spot serviceable.
    assert pk.drop_rate < 0.15 and ada.drop_rate < 0.15
    # The §6 point: the allocated-set scheme needs multiple rounds per
    # migrated channel, the adaptive scheme's guaranteed path is a
    # single search round (attempts counter ≈ alpha-bounded).
    pk_remote = [
        r for r in pk.metrics.records if r.granted and r.mode == "search"
    ]
    assert pk_remote, "the hot spot must force transfers"
    multi_round = sum(1 for r in pk_remote if r.attempts > 1)
    assert multi_round > 0  # transfers do take extra rounds under churn
    assert all(r.violations == 0 for r in reports.values())
