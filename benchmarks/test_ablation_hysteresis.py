"""E5 — Ablation of the threshold hysteresis (paper §3.5).

"Using state dependent threshold value for triggering transition
between local and borrowing modes prevents the situation in which a
cell jumps back and forth between local and borrowing modes."

We run the adaptive scheme on a churn-heavy workload with θ_l = θ_h
(no hysteresis) versus a widening gap, and count mode transitions and
the CHANGE_MODE + STATUS message overhead they generate.

Expected shape: transitions (and their message cost) drop as the gap
widens, with little effect on the drop rate.
"""

from _common import Scenario, print_banner, render_table, run_once
from repro.harness import run_scenario

GAPS = [
    ("2 / 2 (none)", 2.0, 2.0),
    ("2 / 3", 2.0, 3.0),
    ("2 / 4", 2.0, 4.0),
    ("2 / 6", 2.0, 6.0),
]


def test_hysteresis_ablation(benchmark):
    base = Scenario(
        scheme="adaptive",
        offered_load=6.5,  # hovers right around the borrowing threshold
        duration=3000.0,
        warmup=400.0,
    )

    def experiment():
        out = {}
        for label, lo, hi in GAPS:
            reps = [
                run_scenario(
                    base.with_(seed=seed, theta_low=lo, theta_high=hi)
                )
                for seed in (53, 54, 55)
            ]
            out[label] = reps
        return out

    results = run_once(benchmark, experiment)

    def mean(vals):
        return sum(vals) / len(vals)

    rows = []
    stats = {}
    for label, _, _ in GAPS:
        reps = results[label]
        transitions = mean([r.mode_changes for r in reps])
        overhead = mean(
            [
                r.messages_by_kind.get("ChangeMode", 0)
                + r.messages_by_kind.get("Response", 0)
                for r in reps
            ]
        )
        drop = mean([r.drop_rate for r in reps])
        msgs = mean([r.messages_per_acquisition for r in reps])
        stats[label] = (transitions, overhead, drop, msgs)
        rows.append(
            [label, round(transitions), round(overhead), round(drop, 4), round(msgs, 1)]
        )

    print_banner(
        "E5",
        "threshold hysteresis ablation at 6.5 Erlang/cell (3 seeds each)",
    )
    print(
        render_table(
            [
                "theta_l / theta_h",
                "mode changes",
                "ChangeMode+Response msgs",
                "drop rate",
                "msgs/req",
            ],
            rows,
            note="Response counts include the STATUS replies every "
            "CHANGE_MODE triggers (Fig. 5)",
        )
    )

    none = stats["2 / 2 (none)"]
    widest = stats["2 / 6"]
    # Hysteresis cuts flapping substantially...
    assert widest[0] < none[0] * 0.8
    # ...without hurting service.
    assert widest[2] <= none[2] + 0.02
    assert all(r.violations == 0 for reps in results.values() for r in reps)
