"""B0 — Simulator throughput: events/second per scheme.

Not a paper artifact — this measures the reproduction itself (the DES
kernel plus protocol logic), so performance regressions of the
simulator are caught alongside behavioral ones.  The interference
monitor and metrics pipeline are enabled, as in every experiment.
"""

from repro.harness import Scenario, build_simulation

from _common import print_banner, render_table, run_once

SCHEMES = ["fixed", "basic_search", "basic_update", "advanced_update", "prakash", "adaptive"]


def run_and_count(scheme: str):
    sim = build_simulation(
        Scenario(
            scheme=scheme,
            offered_load=8.0,
            duration=1200.0,
            warmup=200.0,
            seed=101,
        )
    )
    sim.source.start()
    env = sim.env
    events = 0
    # Count kernel events by stepping manually.
    from repro.sim.engine import EmptySchedule

    while True:
        if env.peek() > 1200.0:
            break
        try:
            env.step()
        except EmptySchedule:
            break
        events += 1
    return events, sim


def test_simulator_throughput(benchmark):
    import time

    def experiment():
        out = {}
        for scheme in SCHEMES:
            t0 = time.perf_counter()
            events, sim = run_and_count(scheme)
            elapsed = time.perf_counter() - t0
            out[scheme] = (events, elapsed, sim.network.total_sent)
        return out

    results = run_once(benchmark, experiment)

    rows = []
    for scheme, (events, elapsed, msgs) in results.items():
        rows.append(
            [
                scheme,
                events,
                msgs,
                round(elapsed, 2),
                int(events / elapsed) if elapsed else 0,
            ]
        )

    print_banner(
        "B0", "simulator throughput at 8 Erlang/cell (49 cells, 1200 time units)"
    )
    print(
        render_table(
            ["scheme", "kernel events", "messages", "wall (s)", "events/s"],
            rows,
        )
    )

    # Sanity: every scheme clears a modest throughput floor on any
    # hardware this is likely to run on.
    for scheme, (events, elapsed, _msgs) in results.items():
        assert events / elapsed > 10_000, f"{scheme} unexpectedly slow"
