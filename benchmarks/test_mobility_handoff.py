"""E8 — §2.1's handoff: mobile hosts crossing cells mid-call.

The paper's system model includes handoff (release in the old cell,
re-acquire in the new cell) but does not evaluate it; this experiment
completes the picture.  Forced terminations (failed handoffs) are the
quality metric users feel most.

Expected shape: the adaptive scheme posts the lowest forced-termination
rate at a fraction of basic update's message bill.  A notable measured
result: pure basic update is *worse than FCA* here — handoff churn
doubles the request rate, and its per-request permission round plus
retry latency outweigh the borrowing gains, while adaptive pays the
round only for the minority of non-local re-acquisitions.
"""

from _common import (
    PAPER_LABELS,
    Scenario,
    print_banner,
    render_table,
    run_once,
    run_schemes,
)

SCHEMES = ["fixed", "basic_update", "adaptive"]


def test_mobility_handoff(benchmark):
    base = Scenario(
        offered_load=7.0,
        mean_dwell=150.0,  # hosts cross a cell boundary ~1.2x per call
        duration=3000.0,
        warmup=500.0,
        seed=71,
    )

    def experiment():
        return run_schemes(SCHEMES, base)

    reports = run_once(benchmark, experiment)

    rows = []
    for scheme in SCHEMES:
        rep = reports[scheme]
        rows.append(
            [
                PAPER_LABELS[scheme],
                round(rep.new_call_block_rate, 4),
                round(rep.handoff_failure_rate, 4),
                round(rep.mean_acquisition_time, 2),
                round(rep.messages_per_acquisition, 1),
                rep.violations,
            ]
        )

    print_banner(
        "E8",
        "mobility: 7 Erlang/cell, mean dwell 150 (handoff-heavy)",
    )
    print(
        render_table(
            [
                "scheme",
                "new-call block",
                "handoff failure",
                "acq time (T)",
                "msgs/req",
                "violations",
            ],
            rows,
        )
    )

    fx, bu, ada = (
        reports["fixed"],
        reports["basic_update"],
        reports["adaptive"],
    )
    # Handoffs actually happened at scale.
    assert all(
        r.metrics.drop_rate_of("handoff") is not None for r in reports.values()
    )
    assert sum(
        1 for rec in ada.metrics.records if rec.kind == "handoff"
    ) > 1000
    # The adaptive scheme cuts forced terminations versus FCA *and*
    # versus always-on basic update (which churn makes worse than FCA).
    assert ada.handoff_failure_rate < fx.handoff_failure_rate
    assert ada.handoff_failure_rate < bu.handoff_failure_rate
    # Adaptive at a fraction of basic update's message bill.
    assert ada.messages_per_acquisition < bu.messages_per_acquisition
    assert all(r.violations == 0 for r in reports.values())
