#!/usr/bin/env python
"""Regenerate the paper's Figure 1: the cellular architecture.

Prints the hex grid with its k=7 reuse coloring, one cell's
interference region, and the static channel partition — the geometric
substrate every experiment runs on.

Run:  python examples/show_topology.py
"""

from repro.cellular import CellularTopology


def color_map(topo) -> str:
    g = topo.grid
    lines = []
    for r in range(g.rows):
        row = []
        for q in range(g.cols):
            row.append(str(topo.pattern.color(r * g.cols + q)))
        lines.append(" " * r + " ".join(row))
    return "\n".join(lines)


def region_map(topo, center: int) -> str:
    g = topo.grid
    region = topo.IN(center)
    lines = []
    for r in range(g.rows):
        row = []
        for q in range(g.cols):
            cell = r * g.cols + q
            if cell == center:
                row.append("C")
            elif cell in region:
                row.append("#")
            else:
                row.append(".")
        lines.append(" " * r + " ".join(row))
    return "\n".join(lines)


def main() -> None:
    topo = CellularTopology(7, 7, num_channels=70, cluster_size=7, wrap=True)
    print(topo.describe())
    print()
    print("Reuse coloring (k = 7; equal digits may share channels):")
    print()
    print(color_map(topo))
    print()
    center = 24
    print(
        f"Interference region of cell {center} "
        f"(C = the cell, # = IN, {len(topo.IN(center))} cells):"
    )
    print()
    print(region_map(topo, center))
    print()
    print("Static channel partition (primary sets by color):")
    for color in range(topo.pattern.cluster_size):
        channels = sorted(topo.spectrum.channels_of_color(color, 7))
        cells = topo.pattern.cells_of_color(color)
        print(f"  color {color}: channels {channels}  cells {cells}")
    print()
    print(
        "Safety geometry: same-color cells are >= "
        f"{topo.pattern.min_cochannel_distance()} hops apart, the "
        f"interference radius is {topo.interference_radius} — so the "
        "static plan can never conflict (and dynamic borrowing must ask "
        "the whole region)."
    )


if __name__ == "__main__":
    main()
