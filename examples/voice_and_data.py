#!/usr/bin/env python
"""Mixed voice/data traffic (paper §2.1: "a channel can be used for
either data or voice communication").

Voice calls are long (3 minutes) and arrive steadily; data sessions are
short (20 s) and bursty.  Both classes share the same spectrum and the
same allocation protocol — the question is whether short data bursts
suffer (or cause) more blocking than long voice calls under each
scheme.

Run:  python examples/voice_and_data.py
"""

from repro.harness import Scenario, build_simulation, render_table
from repro.traffic import CallConfig, TrafficClass, TrafficMix, TrafficSource, UniformLoad

SCHEMES = ["fixed", "adaptive"]


def run_mixed(scheme: str):
    scenario = Scenario(
        scheme=scheme, duration=4000.0, warmup=500.0, seed=13
    )
    sim = build_simulation(scenario)
    mix = TrafficMix(
        [
            TrafficClass("voice", 0.6, CallConfig(mean_holding=180.0)),
            TrafficClass("data", 0.4, CallConfig(mean_holding=20.0)),
        ]
    )
    # Total offered load ≈ 7 Erlang/cell of combined traffic: rate such
    # that rate * weighted_holding = 7.
    rate = 7.0 / mix.mean_holding
    source = TrafficSource(
        sim.env, sim.stations, UniformLoad(rate), mix, sim.streams,
        horizon=scenario.duration,
    )
    sim.source = source  # replace the default single-class source
    report = sim.run()
    return report, mix


def main() -> None:
    rows = []
    for scheme in SCHEMES:
        report, mix = run_mixed(scheme)
        for name in ("voice", "data"):
            log = mix.logs[name]
            block = log.blocked / log.started if log.started else 0.0
            rows.append(
                [
                    scheme,
                    name,
                    log.started,
                    round(block, 4),
                    round(report.mean_acquisition_time, 3),
                    report.violations,
                ]
            )
    print(
        render_table(
            ["scheme", "class", "calls", "block rate", "acq time (T)", "violations"],
            rows,
            title="voice (180 s) + data (20 s) sharing ~7 Erlang/cell",
            note="block rates per class; acquisition time is scheme-wide",
        )
    )


if __name__ == "__main__":
    main()
