#!/usr/bin/env python
"""Uniform-load sweep: where each scheme wins.

Sweeps the per-cell offered load from well under to well over capacity
(10 primaries per cell) and prints drop rate, mean acquisition time and
message complexity for every scheme, plus the Erlang-B blocking curve
as the analytical reference for fixed allocation.

The shape to look for (paper abstract / §6):

* at low load the adaptive scheme matches FCA — zero latency, zero
  messages — while the dynamic baselines pay full message costs;
* at moderate load dynamic schemes (and adaptive) have far lower drop
  rates than FCA;
* at very high uniform load nothing can beat FCA's drop rate (the
  spectrum is simply full), and adaptive's value is its bounded
  acquisition time versus basic update's unbounded retries.

Run:  python examples/load_sweep.py
"""

from repro import Scenario, run_scenario
from repro.analysis import erlang_b
from repro.harness import render_table

LOADS = [1.0, 3.0, 5.0, 7.0, 9.0, 12.0]
SCHEMES = ["fixed", "basic_search", "basic_update", "advanced_update", "prakash", "adaptive"]


def main() -> None:
    for load in LOADS:
        rows = []
        for scheme in SCHEMES:
            rep = run_scenario(
                Scenario(
                    scheme=scheme,
                    offered_load=load,
                    duration=2500.0,
                    warmup=400.0,
                    seed=11,
                )
            )
            xi = rep.xi
            rows.append(
                [
                    scheme,
                    rep.drop_rate,
                    rep.mean_acquisition_time,
                    rep.messages_per_acquisition,
                    f"{xi['local']:.2f}/{xi['update']:.2f}/{xi['search']:.2f}",
                ]
            )
        print(
            render_table(
                ["scheme", "drop rate", "acq time (T)", "msgs/req", "xi l/u/s"],
                rows,
                title=f"offered load = {load} Erlang/cell "
                f"(Erlang-B reference for FCA: {erlang_b(load, 10):.4f})",
            )
        )
        print()


if __name__ == "__main__":
    main()
