#!/usr/bin/env python
"""Mobility and handoff: §2.1's moving hosts.

Calls move between adjacent cells during their lifetime (random walk
with exponential dwell times); each move releases the channel in the
old cell and re-acquires one in the new cell.  A failed handoff forces
the call to terminate — subjectively much worse than blocking a new
call, so the handoff failure rate is reported separately.

Run:  python examples/mobility_handoff.py
"""

from repro import Scenario, run_scenario
from repro.harness import render_table

SCHEMES = ["fixed", "basic_search", "basic_update", "advanced_update", "prakash", "adaptive"]


def main() -> None:
    for dwell, label in [(600.0, "slow walkers"), (120.0, "fast vehicles")]:
        rows = []
        for scheme in SCHEMES:
            rep = run_scenario(
                Scenario(
                    scheme=scheme,
                    offered_load=6.0,
                    mean_dwell=dwell,
                    duration=3000.0,
                    warmup=400.0,
                    seed=23,
                )
            )
            rows.append(
                [
                    scheme,
                    rep.new_call_block_rate,
                    rep.handoff_failure_rate,
                    rep.mean_acquisition_time,
                    rep.messages_per_acquisition,
                ]
            )
        print(
            render_table(
                [
                    "scheme",
                    "new-call block",
                    "handoff failure",
                    "acq time (T)",
                    "msgs/req",
                ],
                rows,
                title=f"6 Erlang/cell with mobility — mean dwell {dwell:.0f} "
                f"({label})",
            )
        )
        print()


if __name__ == "__main__":
    main()
