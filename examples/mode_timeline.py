#!/usr/bin/env python
"""Watch the adaptive mechanism work: mode timelines through rush hour.

Samples every cell's mode through a temporal hot spot and renders
ASCII timelines: downtown cells flip to borrowing (b/U/S) when the
burst begins and return to local (.) when it ends, while suburban
cells barely stir — the per-cell, self-tuned adaptivity the paper's
title promises.

Run:  python examples/mode_timeline.py
"""

from repro.harness import ModeSampler, Scenario, build_simulation, sparkline
from repro.traffic import TemporalHotspot

HOLDING = 180.0
DOWNTOWN = [16, 17, 23, 24, 25, 31, 32]
SUBURBS = [0, 3, 6, 42, 45, 48]


def main() -> None:
    pattern = TemporalHotspot(
        base_rate=2.0 / HOLDING,
        hot_cells=DOWNTOWN,
        hot_rate=14.0 / HOLDING,
        start=1200.0,
        end=2800.0,
    )
    scenario = Scenario(
        scheme="adaptive",
        pattern=pattern,
        mean_holding=HOLDING,
        duration=4000.0,
        warmup=0.0,
        seed=19,
    )
    sim = build_simulation(scenario)
    sampler = ModeSampler(sim.env, sim.stations, interval=40.0)
    report = sim.run()

    print("Rush hour t in [1200, 2800); sampled every 40 time units.")
    print()
    print("Downtown cells:")
    print(sampler.timeline(cells=DOWNTOWN))
    print()
    print("Suburban cells:")
    print(sampler.timeline(cells=SUBURBS))
    print()
    series = sampler.system_borrowing_series()
    print(f"System borrowing fraction over time: {sparkline(series)}")
    print()
    hot_frac = sum(sampler.borrowing_fraction(c) for c in DOWNTOWN) / len(DOWNTOWN)
    cool_frac = sum(sampler.borrowing_fraction(c) for c in SUBURBS) / len(SUBURBS)
    print(
        f"Borrowing-mode occupancy: downtown {hot_frac:.1%}, "
        f"suburbs {cool_frac:.1%}; drop rate {report.drop_rate:.4f}, "
        f"violations {report.violations}."
    )


if __name__ == "__main__":
    main()
