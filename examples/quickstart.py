#!/usr/bin/env python
"""Quickstart: simulate the adaptive channel-allocation scheme.

Builds the paper-scale system — a 7x7 toroidal hex grid, 70 channels,
k=7 reuse (10 primary channels per cell, 18-cell interference regions)
— offers 5 Erlangs of Poisson call traffic per cell, and prints the
metrics the paper evaluates: call drop rate, channel acquisition time
(in units of the one-way message latency T), control-message counts and
the fraction of acquisitions served in each mode.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace run-artifacts

The optional ``--trace DIR`` switches on the observability layer and
writes a self-contained run directory (Chrome trace for Perfetto,
time-series CSV, markdown run report).  docs/TUTORIAL.md walks through
this script, the trace, and reproducing a paper table step by step.
"""

import argparse

from repro import Scenario, run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="write run artifacts (trace, time series, report) to DIR",
    )
    args = parser.parse_args()

    scenario = Scenario(
        scheme="adaptive",      # try: fixed, basic_search, basic_update,
                                #      advanced_update, prakash
        rows=7, cols=7,         # toroidal hex grid
        num_channels=70,        # 10 primaries per cell under k=7 reuse
        offered_load=5.0,       # Erlangs per cell
        mean_holding=180.0,     # mean call duration (time units)
        duration=4000.0,        # simulated horizon
        warmup=500.0,           # statistics discarded before this
        seed=1,
    )
    if args.trace:
        from repro.obs import ObsConfig

        scenario = scenario.with_(obs=ObsConfig())
    report = run_scenario(scenario)

    print("Topology:", "7x7 torus, 70 channels, reuse k=7 (|IN| = 18)")
    print()
    print(report.summary())
    print()
    print("Messages by type:")
    for kind, count in report.messages_by_kind.items():
        print(f"  {kind:12s} {count}")
    print()
    print(
        "Safety: the interference monitor verified every acquisition —",
        f"{report.violations} co-channel violations.",
    )
    if args.trace:
        from repro.obs import write_run_artifacts

        files = write_run_artifacts(report, args.trace)
        print()
        print(f"Run artifacts in {args.trace}/: {', '.join(files)}")
        print("Open trace.json at https://ui.perfetto.dev — see "
              "docs/OBSERVABILITY.md for the format.")


if __name__ == "__main__":
    main()
