#!/usr/bin/env python
"""Quickstart: simulate the adaptive channel-allocation scheme.

Builds the paper-scale system — a 7x7 toroidal hex grid, 70 channels,
k=7 reuse (10 primary channels per cell, 18-cell interference regions)
— offers 5 Erlangs of Poisson call traffic per cell, and prints the
metrics the paper evaluates: call drop rate, channel acquisition time
(in units of the one-way message latency T), control-message counts and
the fraction of acquisitions served in each mode.

Run:  python examples/quickstart.py
"""

from repro import Scenario, run_scenario


def main() -> None:
    scenario = Scenario(
        scheme="adaptive",      # try: fixed, basic_search, basic_update,
                                #      advanced_update, prakash
        rows=7, cols=7,         # toroidal hex grid
        num_channels=70,        # 10 primaries per cell under k=7 reuse
        offered_load=5.0,       # Erlangs per cell
        mean_holding=180.0,     # mean call duration (time units)
        duration=4000.0,        # simulated horizon
        warmup=500.0,           # statistics discarded before this
        seed=1,
    )
    report = run_scenario(scenario)

    print("Topology:", "7x7 torus, 70 channels, reuse k=7 (|IN| = 18)")
    print()
    print(report.summary())
    print()
    print("Messages by type:")
    for kind, count in report.messages_by_kind.items():
        print(f"  {kind:12s} {count}")
    print()
    print(
        "Safety: the interference monitor verified every acquisition —",
        f"{report.violations} co-channel violations.",
    )


if __name__ == "__main__":
    main()
