#!/usr/bin/env python
"""Hot-spot scenario: the paper's motivating case, §1.

A downtown core (a cluster of cells) carries far more traffic than the
surrounding residential cells, and for part of the day ("rush hour") it
spikes even higher.  Fixed allocation drops rush-hour calls although
the quiet neighbors sit on idle channels; the adaptive scheme borrows
them, at the price of some control messages.

The script compares every scheme on the same workload and prints an
ASCII per-cell drop-rate map for fixed vs adaptive.

Run:  python examples/hotspot_city.py
"""

from repro import Scenario, run_scenario
from repro.harness import render_table
from repro.traffic import TemporalHotspot

DOWNTOWN = [16, 17, 23, 24, 25, 31, 32]  # central cluster of the 7x7 torus
HOLDING = 180.0


def scenario_for(scheme: str) -> Scenario:
    pattern = TemporalHotspot(
        base_rate=2.0 / HOLDING,       # 2 Erlangs in the suburbs
        hot_cells=DOWNTOWN,
        hot_rate=14.0 / HOLDING,       # 14 Erlangs downtown at rush hour
        start=1000.0,
        end=3000.0,
    )
    return Scenario(
        scheme=scheme,
        pattern=pattern,
        mean_holding=HOLDING,
        duration=4000.0,
        warmup=500.0,
        seed=7,
    )


def drop_map(report, rows=7, cols=7) -> str:
    """ASCII heat map of per-cell drop rates (0-9 scale)."""
    rates = report.per_cell_drop_rates
    lines = []
    for r in range(rows):
        indent = " " * r  # suggest the hex geometry
        cells = []
        for q in range(cols):
            cell = r * cols + q
            rate = rates.get(cell, 0.0)
            cells.append(str(min(9, int(rate * 10))))
        lines.append(indent + " ".join(cells))
    return "\n".join(lines)


def main() -> None:
    rows = []
    reports = {}
    for scheme in [
        "fixed", "basic_search", "basic_update",
        "advanced_update", "prakash", "adaptive",
    ]:
        rep = run_scenario(scenario_for(scheme))
        reports[scheme] = rep
        rows.append(
            [
                scheme,
                rep.drop_rate,
                rep.mean_acquisition_time,
                rep.messages_per_acquisition,
                rep.fairness_index,
                rep.violations,
            ]
        )

    print(
        render_table(
            ["scheme", "drop rate", "acq time (T)", "msgs/req", "fairness", "violations"],
            rows,
            title="Rush-hour downtown: 14 Erlang hot cells in a 2 Erlang city",
            note="drop rate over the whole run; hot window is t in [1000, 3000)",
        )
    )

    print()
    print("Per-cell drop rates (x10, 9 = >90%), downtown at the center:")
    print()
    print("fixed:")
    print(drop_map(reports["fixed"]))
    print()
    print("adaptive:")
    print(drop_map(reports["adaptive"]))


if __name__ == "__main__":
    main()
