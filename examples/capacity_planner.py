#!/usr/bin/env python
"""Static capacity planning vs adaptive borrowing.

An operator who *knows* the demand map can size each reuse color's
channel pool optimally (marginal allocation over Erlang-B — provably
optimal for the static system).  This script builds such a plan for a
city where downtown cells carry 4x the suburban load, predicts its
blocking analytically, validates the prediction by simulation, and then
shows what the adaptive scheme achieves with *no* prior knowledge.

Run:  python examples/capacity_planner.py
"""

from repro.analysis import expected_blocked_traffic, plan_partition
from repro.cellular import CellularTopology
from repro.harness import Scenario, render_table, run_scenario
from repro.traffic import PiecewiseLoad

HOLDING = 180.0
HOT_COLOR = 0
HOT_LOAD, COOL_LOAD = 16.0, 4.0


def main() -> None:
    topo = CellularTopology(7, 7, num_channels=70, wrap=True)
    rates, color_loads = {}, {}
    for cell in topo.grid:
        color = topo.pattern.color(cell)
        load = HOT_LOAD if color == HOT_COLOR else COOL_LOAD
        rates[cell] = load / HOLDING
        color_loads[color] = load
    pattern = PiecewiseLoad(rates)

    plan = plan_partition(color_loads, 70)
    uniform = {c: 10 for c in range(7)}

    print("Demand: color-0 cells at 16 Erlang, other colors at 4 Erlang")
    print(f"Planned pools per color: {plan}")
    print()

    rows = []
    for name, counts in [("uniform", uniform), ("planned", plan)]:
        loads = [color_loads[c] for c in range(7)]
        sizes = [counts[c] for c in range(7)]
        blocked = expected_blocked_traffic(loads, sizes)
        total = sum(loads)
        rows.append([name] + sizes + [round(blocked / total, 4)])
    print(
        render_table(
            ["plan"] + [f"c{c}" for c in range(7)] + ["predicted drop"],
            rows,
            title="analytic Erlang-B prediction per plan",
        )
    )
    print()

    base = Scenario(
        pattern=pattern, mean_holding=HOLDING,
        duration=3000.0, warmup=500.0, seed=17,
    )
    rows = []
    for name, scenario in [
        ("uniform FCA", base.with_(scheme="fixed")),
        ("planned FCA", base.with_(scheme="fixed", channels_per_color=plan)),
        ("adaptive (no plan)", base.with_(scheme="adaptive")),
    ]:
        rep = run_scenario(scenario)
        rows.append(
            [name, round(rep.drop_rate, 4), round(rep.messages_per_acquisition, 1),
             round(rep.fairness_index, 4)]
        )
    print(
        render_table(
            ["system", "measured drop", "msgs/req", "fairness"],
            rows,
            title="simulation",
            note="the adaptive scheme has balanced pools and no demand "
            "knowledge, yet beats the informed static plan",
        )
    )


if __name__ == "__main__":
    main()
