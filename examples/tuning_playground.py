#!/usr/bin/env python
"""Tuning the adaptive scheme's knobs: α, θ_l/θ_h and W.

The paper's thresholds are explicitly meant for per-deployment tuning
("these threshold values are used to fine tune the overall performance
of the system", §1).  This script shows how each knob trades the three
objectives — drop rate, acquisition latency, message complexity — on a
moderately hot workload, so an operator can pick a point.

Run:  python examples/tuning_playground.py
"""

from repro import Scenario, run_scenario
from repro.harness import render_table
from repro.traffic import HotspotLoad

HOLDING = 180.0


def base_scenario(**kw) -> Scenario:
    pattern = HotspotLoad(
        base_rate=3.0 / HOLDING,
        hot_cells=[24, 25, 31],
        hot_rate=12.0 / HOLDING,
    )
    defaults = dict(
        scheme="adaptive",
        pattern=pattern,
        mean_holding=HOLDING,
        duration=2500.0,
        warmup=400.0,
        seed=17,
    )
    defaults.update(kw)
    return Scenario(**defaults)


def sweep(title, param_rows):
    rows = []
    for label, overrides in param_rows:
        rep = run_scenario(base_scenario(**overrides))
        rows.append(
            [
                label,
                rep.drop_rate,
                rep.mean_acquisition_time,
                rep.p95_acquisition_time,
                rep.messages_per_acquisition,
                rep.mode_changes,
            ]
        )
    print(
        render_table(
            ["setting", "drop", "acq mean", "acq p95", "msgs/req", "mode changes"],
            rows,
            title=title,
        )
    )
    print()


def main() -> None:
    sweep(
        "alpha — borrow attempts before falling back to search",
        [(f"alpha={a}", {"alpha": a}) for a in (0, 1, 2, 4, 8)],
    )
    sweep(
        "thresholds — hysteresis window (theta_l, theta_h)",
        [
            ("0.5 / 0.5 (no hysteresis)", {"theta_low": 0.5, "theta_high": 0.5}),
            ("1 / 2", {"theta_low": 1.0, "theta_high": 2.0}),
            ("1 / 3 (default)", {"theta_low": 1.0, "theta_high": 3.0}),
            ("2 / 5 (eager borrowing)", {"theta_low": 2.0, "theta_high": 5.0}),
        ],
    )
    sweep(
        "W — NFC prediction window",
        [(f"W={w:g}", {"window": w}) for w in (5.0, 15.0, 30.0, 60.0, 120.0)],
    )


if __name__ == "__main__":
    main()
