#!/usr/bin/env python
"""Physical mobility: random-waypoint hosts crossing real hex borders.

Unlike the exponential-dwell mobility of the other examples, here each
host has a Cartesian position and speed and hands off exactly when its
trajectory crosses a cell boundary — pedestrians rarely do, vehicles
do constantly.  The grid is planar (a city, not a torus), so edge
cells have smaller interference regions too.

Run:  python examples/waypoint_mobility.py
"""


from repro.cellular import CellularTopology
from repro.harness import render_table
from repro.metrics import MetricsCollector
from repro.protocols import InterferenceMonitor
from repro.harness import SCHEMES
from repro.sim import DeterministicLatency, Environment, Network, StreamRegistry
from repro.traffic import CallConfig, CallLog, WaypointHost, waypoint_call_process


def run(scheme: str, speed: float, num_hosts: int = 1000, seed: int = 31):
    env = Environment()
    topo = CellularTopology(7, 7, num_channels=70, wrap=False)
    net = Network(env, DeterministicLatency(1.0))
    metrics = MetricsCollector(warmup=0.0)
    monitor = InterferenceMonitor(topo)
    cls = SCHEMES[scheme]
    stations = {
        c: cls(env, net, topo, c, metrics=metrics, monitor=monitor)
        for c in topo.grid
    }
    streams = StreamRegistry(seed)
    log = CallLog()
    config = CallConfig(mean_holding=240.0)

    def spawn_calls():
        rng = streams.stream("arrivals")
        for i in range(num_hosts):
            yield env.timeout(float(rng.exponential(0.6)))
            host_rng = streams.stream("host", i)
            host = WaypointHost(topo.grid, host_rng, speed=speed)
            env.process(
                waypoint_call_process(
                    env, stations, host, config, host_rng, log=log
                )
            )

    env.process(spawn_calls())
    env.run()
    return log, monitor


def main() -> None:
    rows = []
    for scheme in ["fixed", "adaptive"]:
        for speed, label in [(0.02, "pedestrian"), (0.15, "vehicle")]:
            log, monitor = run(scheme, speed)
            handoffs_per_call = (
                log.handoffs_attempted / max(1, log.started - log.blocked)
            )
            rows.append(
                [
                    scheme,
                    label,
                    round(handoffs_per_call, 2),
                    round(log.blocked / log.started, 4),
                    round(log.forced_termination_rate, 4),
                    len(monitor.violations),
                ]
            )
    print(
        render_table(
            [
                "scheme",
                "mobility",
                "handoffs/call",
                "block rate",
                "forced termination",
                "violations",
            ],
            rows,
            title="random-waypoint hosts on a planar 7x7 city "
            "(1000 calls, ~8 Erlang/cell peak)",
            note="handoffs fire exactly at hex-boundary crossings",
        )
    )


if __name__ == "__main__":
    main()
